#include "core/fused.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/parallel_for.h"
#include "tensor/ops.h"

namespace muffin::core {

FusingStructure FusingStructure::from_choice(const rl::StructureChoice& choice,
                                             std::size_t num_classes) {
  MUFFIN_REQUIRE(!choice.model_indices.empty(),
                 "structure needs at least one body model");
  MUFFIN_REQUIRE(num_classes > 0, "num_classes must be positive");
  FusingStructure structure;
  structure.model_indices = choice.model_indices;
  structure.head_spec.input_dim = choice.model_indices.size() * num_classes;
  structure.head_spec.hidden_dims = choice.hidden_dims;
  structure.head_spec.output_dim = num_classes;
  structure.head_spec.hidden_activation = choice.activation;
  structure.head_spec.output_activation = nn::Activation::Sigmoid;
  return structure;
}

FusedModel::FusedModel(std::string name, std::vector<models::ModelPtr> body,
                       nn::Mlp head, bool head_only_on_disagreement)
    : name_(std::move(name)),
      body_(std::move(body)),
      head_(std::move(head)),
      head_only_on_disagreement_(head_only_on_disagreement),
      num_classes_(0) {
  MUFFIN_REQUIRE(!body_.empty(), "fused model needs at least one body model");
  for (const models::ModelPtr& model : body_) {
    MUFFIN_REQUIRE(model != nullptr, "body models must be non-null");
  }
  num_classes_ = body_.front()->num_classes();
  for (const models::ModelPtr& model : body_) {
    MUFFIN_REQUIRE(model->num_classes() == num_classes_,
                   "body models must share a class count");
  }
  MUFFIN_REQUIRE(head_.spec().input_dim == body_.size() * num_classes_,
                 "head input width must equal body count x classes");
  MUFFIN_REQUIRE(head_.spec().output_dim == num_classes_,
                 "head output width must equal the class count");
}

std::size_t FusedModel::parameter_count() const {
  std::size_t count = head_.parameter_count();
  for (const models::ModelPtr& model : body_) {
    count += model->parameter_count();
  }
  return count;
}

tensor::Vector FusedModel::scores(const data::Record& record) const {
  tensor::Vector gathered(body_.size() * num_classes_, 0.0);
  for (std::size_t m = 0; m < body_.size(); ++m) {
    const tensor::Vector s = body_[m]->scores(record);
    MUFFIN_REQUIRE(s.size() == num_classes_,
                   "body model returned malformed scores");
    for (std::size_t c = 0; c < num_classes_; ++c) {
      gathered[m * num_classes_ + c] = s[c];
    }
  }
  return fuse_gathered(gathered, head_, body_.size(), num_classes_,
                       head_only_on_disagreement_)
      .scores;
}

tensor::Matrix FusedModel::score_batch(
    std::span<const data::Record> records) const {
  // Above the threshold, split the record rows over the shared worker
  // pool: each block runs the full gather + row-wise fuse on its slice.
  // Every output row depends only on its own record, so the partitioned
  // result is bit-identical, row for row, to the serial path (and to
  // per-record scores()). Below the threshold — and inside pool workers,
  // where parallel_for degrades to serial — this is exactly the PR 3
  // serial path with no extra copy.
  constexpr std::size_t kParallelRowThreshold = 256;
  if (records.size() >= kParallelRowThreshold &&
      common::global_pool_size() > 1 &&
      common::ThreadPool::current_worker() == common::ThreadPool::npos) {
    tensor::Matrix out(records.size(), num_classes_);
    parallel_for(records.size(), /*grain=*/128,
                 [&](std::size_t begin, std::size_t end) {
                   const tensor::Matrix gathered = gather_body_scores(
                       body_, num_classes_,
                       records.subspan(begin, end - begin));
                   const FusedBatch fused = fuse_gathered_batch(
                       gathered, head_, body_.size(), num_classes_,
                       head_only_on_disagreement_);
                   // Row-wise copy honoring both leading dimensions (the
                   // stride() hook may pad rows some day); the copied
                   // bytes are a small fraction of the scoring cost.
                   for (std::size_t i = begin; i < end; ++i) {
                     std::memcpy(out.flat().data() + i * out.stride(),
                                 fused.scores.flat().data() +
                                     (i - begin) * fused.scores.stride(),
                                 num_classes_ * sizeof(double));
                   }
                 });
    return out;
  }
  const tensor::Matrix gathered =
      gather_body_scores(body_, num_classes_, records);
  return fuse_gathered_batch(gathered, head_, body_.size(), num_classes_,
                             head_only_on_disagreement_)
      .scores;
}

tensor::Matrix gather_body_scores(const std::vector<models::ModelPtr>& body,
                                  std::size_t num_classes,
                                  std::span<const data::Record> records) {
  const std::size_t n = records.size();
  // Gather model-at-a-time: each body model scores the whole batch through
  // its score_batch override, keeping that model's state hot across rows.
  tensor::Matrix gathered(n, body.size() * num_classes);
  for (std::size_t m = 0; m < body.size(); ++m) {
    const tensor::Matrix s = body[m]->score_batch(records);
    MUFFIN_REQUIRE(s.rows() == n && s.cols() == num_classes,
                   "body model returned malformed scores");
    for (std::size_t i = 0; i < n; ++i) {
      const auto src = s.row(i);
      auto dst = gathered.row(i);
      for (std::size_t c = 0; c < num_classes; ++c) {
        dst[m * num_classes + c] = src[c];
      }
    }
  }
  return gathered;
}

FusedScores fuse_gathered(std::span<const double> gathered,
                          const nn::Mlp& head, std::size_t body_size,
                          std::size_t num_classes,
                          bool head_only_on_disagreement) {
  MUFFIN_REQUIRE(gathered.size() == body_size * num_classes,
                 "gathered row must be body count x classes wide");
  std::size_t consensus = 0;
  bool all_agree = true;
  for (std::size_t m = 0; m < body_size; ++m) {
    const std::size_t pred =
        tensor::argmax(gathered.subspan(m * num_classes, num_classes));
    if (m == 0) {
      consensus = pred;
    } else if (pred != consensus) {
      all_agree = false;
    }
  }

  if (head_only_on_disagreement && all_agree) {
    // Consensus: return the mean body score vector (argmax == consensus).
    tensor::Vector mean(num_classes, 0.0);
    for (std::size_t m = 0; m < body_size; ++m) {
      for (std::size_t c = 0; c < num_classes; ++c) {
        mean[c] += gathered[m * num_classes + c];
      }
    }
    for (double& v : mean) v /= static_cast<double>(body_size);
    return {std::move(mean), true};
  }

  tensor::Vector out = head.forward_inference(gathered);
  const double total = tensor::sum(out);
  if (total > 1e-12) {
    for (double& v : out) v /= total;
  }
  return {std::move(out), false};
}

FusedBatch fuse_gathered_batch(const tensor::Matrix& gathered,
                               const nn::Mlp& head, std::size_t body_size,
                               std::size_t num_classes,
                               bool head_only_on_disagreement) {
  MUFFIN_REQUIRE(gathered.cols() == body_size * num_classes,
                 "gathered rows must be body count x classes wide");
  const std::size_t n = gathered.rows();
  FusedBatch batch;
  batch.scores.resize(n, num_classes);
  batch.consensus.assign(n, false);

  // Row-wise consensus gate (same argmax order as fuse_gathered).
  std::vector<std::size_t> head_rows;
  head_rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = gathered.row(i);
    std::size_t consensus = 0;
    bool all_agree = true;
    for (std::size_t m = 0; m < body_size; ++m) {
      const std::size_t pred =
          tensor::argmax(row.subspan(m * num_classes, num_classes));
      if (m == 0) {
        consensus = pred;
      } else if (pred != consensus) {
        all_agree = false;
      }
    }
    if (head_only_on_disagreement && all_agree) {
      // Consensus: the mean body score vector (argmax == consensus).
      auto out = batch.scores.row(i);
      for (std::size_t m = 0; m < body_size; ++m) {
        for (std::size_t c = 0; c < num_classes; ++c) {
          out[c] += row[m * num_classes + c];
        }
      }
      for (double& v : out) v /= static_cast<double>(body_size);
      batch.consensus[i] = true;
    } else {
      head_rows.push_back(i);
    }
  }

  // One batched head forward over the disagreement sub-batch.
  if (!head_rows.empty()) {
    tensor::Matrix sub(head_rows.size(), gathered.cols());
    for (std::size_t k = 0; k < head_rows.size(); ++k) {
      const auto src = gathered.row(head_rows[k]);
      std::copy(src.begin(), src.end(), sub.row(k).begin());
    }
    const tensor::Matrix head_out = head.forward_batch_inference(sub);
    for (std::size_t k = 0; k < head_rows.size(); ++k) {
      const auto src = head_out.row(k);
      auto dst = batch.scores.row(head_rows[k]);
      std::copy(src.begin(), src.end(), dst.begin());
      const double total = tensor::sum(dst);
      if (total > 1e-12) {
        for (double& v : dst) v /= total;
      }
    }
  }
  batch.head_rows = head_rows.size();
  return batch;
}

std::vector<std::size_t> fused_predictions(const ScoreCache& cache,
                                           const FusingStructure& structure,
                                           const nn::Mlp& head,
                                           bool head_only_on_disagreement) {
  MUFFIN_REQUIRE(head.spec().input_dim ==
                     structure.model_indices.size() * cache.num_classes(),
                 "head input width must match structure and cache");
  const std::size_t width =
      structure.model_indices.size() * cache.num_classes();
  std::vector<std::size_t> predictions(cache.num_records());

  // Resolve consensus rows straight from the cached argmaxes; collect the
  // disagreement rows for one batched head forward.
  std::vector<std::size_t> head_rows;
  for (std::size_t i = 0; i < cache.num_records(); ++i) {
    std::size_t consensus = 0;
    if (head_only_on_disagreement &&
        cache.consensus(structure.model_indices, i, consensus)) {
      predictions[i] = consensus;
    } else {
      head_rows.push_back(i);
    }
  }
  if (head_rows.empty()) return predictions;

  tensor::Matrix gathered(head_rows.size(), width);
  for (std::size_t k = 0; k < head_rows.size(); ++k) {
    cache.gather(structure.model_indices, head_rows[k], gathered.row(k));
  }
  const std::vector<std::size_t> head_preds = head.predict_batch(gathered);
  for (std::size_t k = 0; k < head_rows.size(); ++k) {
    predictions[head_rows[k]] = head_preds[k];
  }
  return predictions;
}

}  // namespace muffin::core
