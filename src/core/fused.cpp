#include "core/fused.h"

#include "common/error.h"
#include "tensor/ops.h"

namespace muffin::core {

FusingStructure FusingStructure::from_choice(const rl::StructureChoice& choice,
                                             std::size_t num_classes) {
  MUFFIN_REQUIRE(!choice.model_indices.empty(),
                 "structure needs at least one body model");
  MUFFIN_REQUIRE(num_classes > 0, "num_classes must be positive");
  FusingStructure structure;
  structure.model_indices = choice.model_indices;
  structure.head_spec.input_dim = choice.model_indices.size() * num_classes;
  structure.head_spec.hidden_dims = choice.hidden_dims;
  structure.head_spec.output_dim = num_classes;
  structure.head_spec.hidden_activation = choice.activation;
  structure.head_spec.output_activation = nn::Activation::Sigmoid;
  return structure;
}

FusedModel::FusedModel(std::string name, std::vector<models::ModelPtr> body,
                       nn::Mlp head, bool head_only_on_disagreement)
    : name_(std::move(name)),
      body_(std::move(body)),
      head_(std::move(head)),
      head_only_on_disagreement_(head_only_on_disagreement),
      num_classes_(0) {
  MUFFIN_REQUIRE(!body_.empty(), "fused model needs at least one body model");
  for (const models::ModelPtr& model : body_) {
    MUFFIN_REQUIRE(model != nullptr, "body models must be non-null");
  }
  num_classes_ = body_.front()->num_classes();
  for (const models::ModelPtr& model : body_) {
    MUFFIN_REQUIRE(model->num_classes() == num_classes_,
                   "body models must share a class count");
  }
  MUFFIN_REQUIRE(head_.spec().input_dim == body_.size() * num_classes_,
                 "head input width must equal body count x classes");
  MUFFIN_REQUIRE(head_.spec().output_dim == num_classes_,
                 "head output width must equal the class count");
}

std::size_t FusedModel::parameter_count() const {
  std::size_t count = head_.parameter_count();
  for (const models::ModelPtr& model : body_) {
    count += model->parameter_count();
  }
  return count;
}

tensor::Vector FusedModel::scores(const data::Record& record) const {
  tensor::Vector gathered(body_.size() * num_classes_, 0.0);
  for (std::size_t m = 0; m < body_.size(); ++m) {
    const tensor::Vector s = body_[m]->scores(record);
    MUFFIN_REQUIRE(s.size() == num_classes_,
                   "body model returned malformed scores");
    for (std::size_t c = 0; c < num_classes_; ++c) {
      gathered[m * num_classes_ + c] = s[c];
    }
  }
  const std::lock_guard<std::mutex> lock(head_mutex_);
  return fuse_gathered(gathered, head_, body_.size(), num_classes_,
                       head_only_on_disagreement_)
      .scores;
}

FusedScores fuse_gathered(std::span<const double> gathered, nn::Mlp& head,
                          std::size_t body_size, std::size_t num_classes,
                          bool head_only_on_disagreement) {
  MUFFIN_REQUIRE(gathered.size() == body_size * num_classes,
                 "gathered row must be body count x classes wide");
  std::size_t consensus = 0;
  bool all_agree = true;
  for (std::size_t m = 0; m < body_size; ++m) {
    const std::size_t pred =
        tensor::argmax(gathered.subspan(m * num_classes, num_classes));
    if (m == 0) {
      consensus = pred;
    } else if (pred != consensus) {
      all_agree = false;
    }
  }

  if (head_only_on_disagreement && all_agree) {
    // Consensus: return the mean body score vector (argmax == consensus).
    tensor::Vector mean(num_classes, 0.0);
    for (std::size_t m = 0; m < body_size; ++m) {
      for (std::size_t c = 0; c < num_classes; ++c) {
        mean[c] += gathered[m * num_classes + c];
      }
    }
    for (double& v : mean) v /= static_cast<double>(body_size);
    return {std::move(mean), true};
  }

  tensor::Vector out = head.forward(gathered);
  const double total = tensor::sum(out);
  if (total > 1e-12) {
    for (double& v : out) v /= total;
  }
  return {std::move(out), false};
}

std::vector<std::size_t> fused_predictions(const ScoreCache& cache,
                                           const FusingStructure& structure,
                                           nn::Mlp& head,
                                           bool head_only_on_disagreement) {
  MUFFIN_REQUIRE(head.spec().input_dim ==
                     structure.model_indices.size() * cache.num_classes(),
                 "head input width must match structure and cache");
  std::vector<std::size_t> predictions(cache.num_records());
  tensor::Vector gathered(structure.model_indices.size() *
                          cache.num_classes());
  for (std::size_t i = 0; i < cache.num_records(); ++i) {
    std::size_t consensus = 0;
    if (head_only_on_disagreement &&
        cache.consensus(structure.model_indices, i, consensus)) {
      predictions[i] = consensus;
      continue;
    }
    cache.gather(structure.model_indices, i, gathered);
    predictions[i] = head.predict(gathered);
  }
  return predictions;
}

}  // namespace muffin::core
