#include "core/reward.h"

#include <algorithm>

#include "common/error.h"

namespace muffin::core {

double multi_fairness_reward(const fairness::FairnessReport& report,
                             const RewardConfig& config) {
  MUFFIN_REQUIRE(!config.attributes.empty(),
                 "reward needs at least one unfair attribute");
  MUFFIN_REQUIRE(config.unfairness_floor > 0.0,
                 "unfairness floor must be positive");
  double reward = 0.0;
  for (const std::string& attribute : config.attributes) {
    const double u = report.unfairness_for(attribute);
    reward += report.accuracy / std::max(u, config.unfairness_floor);
  }
  return reward;
}

}  // namespace muffin::core
