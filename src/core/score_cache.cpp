#include "core/score_cache.h"

#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "tensor/ops.h"

namespace muffin::core {

namespace {

obs::Gauge& footprint_gauge() {
  static obs::Gauge& gauge = obs::registry().gauge("core.score_cache_bytes");
  return gauge;
}

}  // namespace

ScoreCache::ScoreCache(const models::ModelPool& pool,
                       const data::Dataset& dataset, tensor::QuantMode mode,
                       std::uint64_t model_version)
    : num_records_(dataset.size()),
      num_classes_(dataset.num_classes()),
      model_version_(model_version),
      mode_(mode) {
  MUFFIN_REQUIRE(pool.size() > 0, "score cache needs a non-empty pool");
  MUFFIN_REQUIRE(dataset.size() > 0, "score cache needs a non-empty dataset");
  MUFFIN_REQUIRE(num_classes_ <= 256,
                 "score cache stores predictions as one byte; datasets with "
                 "more than 256 classes are not supported");
  const std::size_t plane = num_records_ * num_classes_;
  predictions_.reserve(pool.size());
  for (std::size_t m = 0; m < pool.size(); ++m) {
    const models::Model& model = pool.at(m);
    MUFFIN_REQUIRE(model.num_classes() == num_classes_,
                   "pool model class count must match dataset");
    // One batched scoring pass per model. Predictions are taken from the
    // full-precision scores before any quantization, so consensus — and
    // with it the serving fast path — is independent of the score
    // encoding.
    const tensor::Matrix score_matrix = model.score_batch(dataset.records());
    MUFFIN_REQUIRE(score_matrix.rows() == num_records_ &&
                       score_matrix.cols() == num_classes_,
                   "model returned a malformed score matrix");
    std::vector<std::uint8_t> preds(num_records_);
    for (std::size_t i = 0; i < num_records_; ++i) {
      preds[i] =
          static_cast<std::uint8_t>(tensor::argmax(score_matrix.row(i)));
    }
    predictions_.push_back(std::move(preds));
    const std::span<const double> flat = score_matrix.flat();
    switch (mode_) {
      case tensor::QuantMode::Off: {
        planes_f64_.emplace_back(flat.begin(), flat.end());
        break;
      }
      case tensor::QuantMode::Bf16: {
        std::vector<std::uint16_t> q(plane);
        for (std::size_t i = 0; i < plane; ++i) {
          q[i] = tensor::bf16_from_double(flat[i]);
        }
        planes_bf16_.push_back(std::move(q));
        break;
      }
      case tensor::QuantMode::Int8: {
        // Symmetric per-class-column scales: class score ranges differ
        // (and a single hot class must not flatten the others' grid).
        std::vector<double> scales(num_classes_);
        for (std::size_t c = 0; c < num_classes_; ++c) {
          double maxabs = 0.0;
          for (std::size_t i = 0; i < num_records_; ++i) {
            const double v = score_matrix(i, c);
            const double a = v < 0.0 ? -v : v;
            if (a > maxabs) maxabs = a;
          }
          scales[c] = tensor::i8_scale_from_maxabs(maxabs);
        }
        std::vector<std::int8_t> q(plane);
        for (std::size_t i = 0; i < num_records_; ++i) {
          for (std::size_t c = 0; c < num_classes_; ++c) {
            q[i * num_classes_ + c] =
                tensor::i8_from_double(score_matrix(i, c), scales[c]);
          }
        }
        planes_i8_.push_back(std::move(q));
        scales_.push_back(std::move(scales));
        break;
      }
    }
  }
  for (const auto& p : planes_f64_) footprint_bytes_ += p.size() * 8;
  for (const auto& p : planes_bf16_) footprint_bytes_ += p.size() * 2;
  for (const auto& p : planes_i8_) footprint_bytes_ += p.size();
  for (const auto& s : scales_) footprint_bytes_ += s.size() * 8;
  for (const auto& p : predictions_) footprint_bytes_ += p.size();
  footprint_gauge().add(static_cast<std::int64_t>(footprint_bytes_));
}

void ScoreCache::release_footprint() noexcept {
  if (footprint_bytes_ > 0) {
    footprint_gauge().sub(static_cast<std::int64_t>(footprint_bytes_));
    footprint_bytes_ = 0;
  }
}

ScoreCache::~ScoreCache() { release_footprint(); }

ScoreCache::ScoreCache(ScoreCache&& other) noexcept
    : num_records_(other.num_records_),
      num_classes_(other.num_classes_),
      model_version_(other.model_version_),
      mode_(other.mode_),
      footprint_bytes_(std::exchange(other.footprint_bytes_, 0)),
      planes_f64_(std::move(other.planes_f64_)),
      planes_bf16_(std::move(other.planes_bf16_)),
      planes_i8_(std::move(other.planes_i8_)),
      scales_(std::move(other.scales_)),
      predictions_(std::move(other.predictions_)) {}

ScoreCache& ScoreCache::operator=(ScoreCache&& other) noexcept {
  if (this == &other) return *this;
  release_footprint();
  num_records_ = other.num_records_;
  num_classes_ = other.num_classes_;
  model_version_ = other.model_version_;
  mode_ = other.mode_;
  footprint_bytes_ = std::exchange(other.footprint_bytes_, 0);
  planes_f64_ = std::move(other.planes_f64_);
  planes_bf16_ = std::move(other.planes_bf16_);
  planes_i8_ = std::move(other.planes_i8_);
  scales_ = std::move(other.scales_);
  predictions_ = std::move(other.predictions_);
  return *this;
}

tensor::Matrix ScoreCache::scores_dense(std::size_t model) const {
  MUFFIN_REQUIRE(model < num_models(), "model index out of range");
  tensor::Matrix out(num_records_, num_classes_);
  const std::span<double> flat = out.flat();
  switch (mode_) {
    case tensor::QuantMode::Off: {
      const auto& p = planes_f64_[model];
      std::copy(p.begin(), p.end(), flat.begin());
      break;
    }
    case tensor::QuantMode::Bf16: {
      const auto& p = planes_bf16_[model];
      for (std::size_t i = 0; i < flat.size(); ++i) {
        flat[i] = tensor::bf16_to_double(p[i]);
      }
      break;
    }
    case tensor::QuantMode::Int8: {
      const auto& p = planes_i8_[model];
      const auto& scales = scales_[model];
      for (std::size_t i = 0; i < num_records_; ++i) {
        for (std::size_t c = 0; c < num_classes_; ++c) {
          flat[i * num_classes_ + c] =
              tensor::i8_to_double(p[i * num_classes_ + c], scales[c]);
        }
      }
      break;
    }
  }
  return out;
}

std::size_t ScoreCache::prediction(std::size_t model,
                                   std::size_t record) const {
  MUFFIN_REQUIRE(model < num_models(), "model index out of range");
  MUFFIN_REQUIRE(record < num_records_, "record index out of range");
  return predictions_[model][record];
}

void ScoreCache::gather(std::span<const std::size_t> model_indices,
                        std::size_t record, std::span<double> out) const {
  MUFFIN_REQUIRE(record < num_records_, "record index out of range");
  MUFFIN_REQUIRE(out.size() == model_indices.size() * num_classes_,
                 "gather output span has the wrong size");
  const std::size_t base = record * num_classes_;
  std::size_t cursor = 0;
  for (const std::size_t m : model_indices) {
    MUFFIN_REQUIRE(m < num_models(), "model index out of range");
    switch (mode_) {
      case tensor::QuantMode::Off: {
        const double* row = planes_f64_[m].data() + base;
        for (std::size_t c = 0; c < num_classes_; ++c) {
          out[cursor++] = row[c];
        }
        break;
      }
      case tensor::QuantMode::Bf16: {
        const std::uint16_t* row = planes_bf16_[m].data() + base;
        for (std::size_t c = 0; c < num_classes_; ++c) {
          out[cursor++] = tensor::bf16_to_double(row[c]);
        }
        break;
      }
      case tensor::QuantMode::Int8: {
        const std::int8_t* row = planes_i8_[m].data() + base;
        const double* scales = scales_[m].data();
        for (std::size_t c = 0; c < num_classes_; ++c) {
          out[cursor++] = tensor::i8_to_double(row[c], scales[c]);
        }
        break;
      }
    }
  }
}

bool ScoreCache::consensus(std::span<const std::size_t> model_indices,
                           std::size_t record,
                           std::size_t& consensus_class) const {
  MUFFIN_REQUIRE(!model_indices.empty(), "consensus needs at least one model");
  MUFFIN_REQUIRE(record < num_records_, "record index out of range");
  MUFFIN_REQUIRE(model_indices[0] < num_models(),
                 "model index out of range");
  const std::uint8_t first = predictions_[model_indices[0]][record];
  for (const std::size_t m : model_indices.subspan(1)) {
    MUFFIN_REQUIRE(m < num_models(), "model index out of range");
    if (predictions_[m][record] != first) return false;
  }
  consensus_class = first;
  return true;
}

}  // namespace muffin::core
