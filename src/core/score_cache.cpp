#include "core/score_cache.h"

#include "common/error.h"
#include "tensor/ops.h"

namespace muffin::core {

ScoreCache::ScoreCache(const models::ModelPool& pool,
                       const data::Dataset& dataset)
    : num_records_(dataset.size()), num_classes_(dataset.num_classes()) {
  MUFFIN_REQUIRE(pool.size() > 0, "score cache needs a non-empty pool");
  MUFFIN_REQUIRE(dataset.size() > 0, "score cache needs a non-empty dataset");
  scores_.reserve(pool.size());
  predictions_.reserve(pool.size());
  for (std::size_t m = 0; m < pool.size(); ++m) {
    const models::Model& model = pool.at(m);
    MUFFIN_REQUIRE(model.num_classes() == num_classes_,
                   "pool model class count must match dataset");
    // One batched scoring pass per model — the (num_records, num_classes)
    // result is exactly the cache layout, so it is adopted wholesale.
    tensor::Matrix score_matrix = model.score_batch(dataset.records());
    MUFFIN_REQUIRE(score_matrix.rows() == num_records_ &&
                       score_matrix.cols() == num_classes_,
                   "model returned a malformed score matrix");
    std::vector<std::size_t> preds(num_records_);
    for (std::size_t i = 0; i < num_records_; ++i) {
      preds[i] = tensor::argmax(score_matrix.row(i));
    }
    scores_.push_back(std::move(score_matrix));
    predictions_.push_back(std::move(preds));
  }
}

const tensor::Matrix& ScoreCache::scores(std::size_t model) const {
  MUFFIN_REQUIRE(model < scores_.size(), "model index out of range");
  return scores_[model];
}

std::span<const std::size_t> ScoreCache::predictions(std::size_t model) const {
  MUFFIN_REQUIRE(model < predictions_.size(), "model index out of range");
  return predictions_[model];
}

void ScoreCache::gather(std::span<const std::size_t> model_indices,
                        std::size_t record, std::span<double> out) const {
  MUFFIN_REQUIRE(record < num_records_, "record index out of range");
  MUFFIN_REQUIRE(out.size() == model_indices.size() * num_classes_,
                 "gather output span has the wrong size");
  std::size_t cursor = 0;
  for (const std::size_t m : model_indices) {
    MUFFIN_REQUIRE(m < scores_.size(), "model index out of range");
    const auto row = scores_[m].row(record);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      out[cursor++] = row[c];
    }
  }
}

bool ScoreCache::consensus(std::span<const std::size_t> model_indices,
                           std::size_t record,
                           std::size_t& consensus_class) const {
  MUFFIN_REQUIRE(!model_indices.empty(), "consensus needs at least one model");
  MUFFIN_REQUIRE(record < num_records_, "record index out of range");
  const std::size_t first = predictions_[model_indices[0]][record];
  for (const std::size_t m : model_indices.subspan(1)) {
    if (predictions_[m][record] != first) return false;
  }
  consensus_class = first;
  return true;
}

}  // namespace muffin::core
