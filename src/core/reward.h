// Multi-fairness reward (framework component #3, Eq. 3):
//   Reward = Σ_k A(f', D) / U(f', D)_{a_k}
// over the K unfair attributes. Larger = more accurate and fairer.
#pragma once

#include <string>
#include <vector>

#include "fairness/metrics.h"

namespace muffin::core {

struct RewardConfig {
  /// The unfair attributes entering the sum (e.g. {"age", "site"}).
  std::vector<std::string> attributes;
  /// Denominator floor: a structure driving U below this no longer gains
  /// unbounded reward (keeps Eq. 3 finite when a group gap vanishes).
  double unfairness_floor = 0.02;
};

[[nodiscard]] double multi_fairness_reward(
    const fairness::FairnessReport& report, const RewardConfig& config);

}  // namespace muffin::core
