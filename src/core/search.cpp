#include "core/search.h"

#include <algorithm>
#include <future>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/log.h"
#include "common/parallel_for.h"

namespace muffin::core {

const EpisodeRecord& SearchResult::best() const {
  MUFFIN_REQUIRE(!episodes.empty(), "search produced no episodes");
  return episodes[best_index];
}

std::vector<std::size_t> SearchResult::pareto_unfairness(
    const std::string& first_attribute,
    const std::string& second_attribute) const {
  std::vector<fairness::ParetoPoint> points;
  points.reserve(episodes.size());
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    points.push_back(
        {{episodes[i].eval_report.unfairness_for(first_attribute),
          episodes[i].eval_report.unfairness_for(second_attribute)},
         i});
  }
  const fairness::Direction dirs[] = {fairness::Direction::Minimize,
                                      fairness::Direction::Minimize};
  return fairness::pareto_front(points, dirs);
}

std::vector<std::size_t> SearchResult::pareto_accuracy(
    std::span<const std::string> attributes) const {
  std::vector<fairness::ParetoPoint> points;
  points.reserve(episodes.size());
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    points.push_back({{episodes[i].eval_report.accuracy,
                       episodes[i].eval_report.overall_unfairness(attributes)},
                      i});
  }
  const fairness::Direction dirs[] = {fairness::Direction::Maximize,
                                      fairness::Direction::Minimize};
  return fairness::pareto_front(points, dirs);
}

std::size_t SearchResult::best_for_attribute(
    const std::string& attribute) const {
  MUFFIN_REQUIRE(!episodes.empty(), "search produced no episodes");
  std::size_t best = 0;
  double best_u = episodes[0].eval_report.unfairness_for(attribute);
  for (std::size_t i = 1; i < episodes.size(); ++i) {
    const double u = episodes[i].eval_report.unfairness_for(attribute);
    if (u < best_u) {
      best_u = u;
      best = i;
    }
  }
  return best;
}

MuffinSearch::MuffinSearch(const models::ModelPool& pool,
                           const data::Dataset& train,
                           const data::Dataset& eval, rl::SearchSpace space,
                           MuffinSearchConfig config)
    : pool_(pool),
      train_(train),
      eval_(eval),
      space_(std::move(space)),
      config_(std::move(config)),
      train_cache_(pool, train),
      eval_cache_(pool, eval),
      eval_partition_(eval),
      proxy_(build_proxy(train, config_.proxy)),
      controller_(space_, config_.controller) {
  MUFFIN_REQUIRE(space_.pool_size == pool.size(),
                 "search space pool size must match the pool");
  MUFFIN_REQUIRE(train.num_classes() == eval.num_classes(),
                 "train/eval class counts must match");
  MUFFIN_REQUIRE(!config_.reward.attributes.empty(),
                 "configure the unfair attributes for the reward");
  MUFFIN_REQUIRE(config_.episodes > 0, "need at least one episode");
  MUFFIN_REQUIRE(config_.controller_batch > 0,
                 "controller batch must be positive");
}

EpisodeRecord MuffinSearch::evaluate_internal(
    const rl::StructureChoice& choice, std::uint64_t episode_seed) const {
  FusingStructure structure =
      FusingStructure::from_choice(choice, train_.num_classes());
  HeadTrainConfig head_config = config_.head_train;
  head_config.seed = SplitRng(config_.seed)
                         .fork("episode:" + std::to_string(episode_seed))
                         .seed();
  nn::Mlp head =
      train_head(train_cache_, train_, proxy_, structure, head_config);

  const std::vector<std::size_t> predictions = fused_predictions(
      eval_cache_, structure, head, config_.head_only_on_disagreement);

  EpisodeRecord record;
  record.choice = choice;
  // Precomputed group partition: episodes only change predictions, so the
  // report accumulates over flat label/group arrays (bit-identical to
  // evaluate_predictions(eval_, ...), pinned by the fairness tests).
  record.eval_report =
      fairness::evaluate_predictions(eval_partition_, predictions);
  record.reward = multi_fairness_reward(record.eval_report, config_.reward);
  record.parameter_count = structure.head_spec.parameter_count();
  std::ostringstream names;
  for (std::size_t i = 0; i < choice.model_indices.size(); ++i) {
    const models::Model& model = pool_.at(choice.model_indices[i]);
    record.parameter_count += model.parameter_count();
    names << (i ? "+" : "") << model.name();
  }
  record.body_names = names.str();
  return record;
}

EpisodeRecord MuffinSearch::evaluate_choice(const rl::StructureChoice& choice,
                                            std::uint64_t episode_seed) {
  return evaluate_internal(choice, episode_seed);
}

std::shared_ptr<FusedModel> MuffinSearch::build_fused(
    const rl::StructureChoice& choice, const std::string& name,
    std::uint64_t episode_seed) const {
  FusingStructure structure =
      FusingStructure::from_choice(choice, train_.num_classes());
  HeadTrainConfig head_config = config_.head_train;
  head_config.seed = SplitRng(config_.seed)
                         .fork("episode:" + std::to_string(episode_seed))
                         .seed();
  nn::Mlp head =
      train_head(train_cache_, train_, proxy_, structure, head_config);
  std::vector<models::ModelPtr> body;
  body.reserve(choice.model_indices.size());
  for (const std::size_t m : choice.model_indices) {
    body.push_back(pool_.share(m));
  }
  return std::make_shared<FusedModel>(name, std::move(body), std::move(head),
                                      config_.head_only_on_disagreement);
}

SearchResult MuffinSearch::run() {
  SearchResult result;
  result.episodes.reserve(config_.episodes);
  SplitRng sample_rng = SplitRng(config_.seed).fork("controller-sampling");

  // Controller batches evaluate on the process-wide shared pool — the
  // same one the serving engine and the kernel-level parallel_for use —
  // so a search running next to a serving tier queues work instead of
  // spawning competing threads. (Episode jobs that reach a kernel split
  // run it inline: parallel_for detects pool workers and stays serial.)
  common::ThreadPool* pool =
      config_.parallel ? &common::global_pool() : nullptr;

  std::size_t episode = 0;
  while (episode < config_.episodes) {
    const std::size_t batch =
        std::min(config_.controller_batch, config_.episodes - episode);

    // ➀ sample a batch of structures from the current policy.
    std::vector<rl::SampledStructure> sampled;
    sampled.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      sampled.push_back(controller_.sample(sample_rng));
    }

    // ➁+➂ train heads and evaluate (parallel across the batch; memoized
    // structures are reused directly).
    std::vector<EpisodeRecord> records(batch);
    std::vector<std::future<EpisodeRecord>> futures(batch);
    std::vector<bool> from_memo(batch, false);
    try {
      for (std::size_t b = 0; b < batch; ++b) {
        const std::string key = sampled[b].choice.to_string();
        const auto it = memo_.find(key);
        if (it != memo_.end()) {
          records[b] = it->second;
          records[b].tokens = sampled[b].tokens;
          from_memo[b] = true;
          continue;
        }
        const std::uint64_t episode_seed = episode + b;
        if (config_.parallel) {
          futures[b] = pool->submit([this, &sampled, b, episode_seed]() {
            return evaluate_internal(sampled[b].choice, episode_seed);
          });
        } else {
          records[b] = evaluate_internal(sampled[b].choice, episode_seed);
          records[b].tokens = sampled[b].tokens;
        }
      }
      if (config_.parallel) {
        for (std::size_t b = 0; b < batch; ++b) {
          if (from_memo[b]) continue;
          records[b] = futures[b].get();
          records[b].tokens = sampled[b].tokens;
        }
      }
    } catch (...) {
      // Pool futures do not block on destruction (std::async's did), so an
      // episode failure must not unwind this scope while other jobs still
      // reference `sampled` and friends; wait() never throws.
      for (std::future<EpisodeRecord>& future : futures) {
        if (future.valid()) future.wait();
      }
      throw;
    }

    // ➃ controller update with the batch rewards.
    std::vector<rl::EpisodeResult> feedback;
    feedback.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      feedback.push_back({sampled[b].tokens, records[b].reward});
      memo_.insert({sampled[b].choice.to_string(), records[b]});
    }
    const rl::UpdateStats stats = controller_.update(feedback);
    MUFFIN_LOG_DEBUG << "episodes " << episode << ".." << episode + batch - 1
                     << " mean reward " << stats.mean_reward << " baseline "
                     << stats.baseline;

    for (std::size_t b = 0; b < batch; ++b) {
      result.episodes.push_back(std::move(records[b]));
      const std::size_t idx = result.episodes.size() - 1;
      if (result.episodes[idx].reward >
          result.episodes[result.best_index].reward) {
        result.best_index = idx;
      }
      if (config_.on_episode) {
        config_.on_episode(episode + b, result.episodes[idx]);
      }
    }
    episode += batch;
  }
  return result;
}

}  // namespace muffin::core
