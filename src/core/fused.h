// The model-fusing structure: muffin body + muffin head.
//
// The body is a set of frozen off-the-shelf models; the head is a trained
// MLP consuming the concatenation of their score vectors. Following §3.2
// ("the proposed technique is not going to change the output if all models
// reached consensus"), the head is consulted only when the body models
// disagree; on consensus the fused system returns the consensus class.
#pragma once

#include <memory>

#include "core/score_cache.h"
#include "models/model.h"
#include "nn/mlp.h"
#include "rl/search_space.h"

namespace muffin::core {

/// Architecture description of a fused system.
struct FusingStructure {
  std::vector<std::size_t> model_indices;  ///< body (pool indices)
  nn::MlpSpec head_spec;                   ///< muffin head MLP

  /// Build from a controller structure choice and the dataset class count.
  static FusingStructure from_choice(const rl::StructureChoice& choice,
                                     std::size_t num_classes);
};

/// A fused classifier implementing the models::Model interface, so fairness
/// metrics, compositions and reports treat it like any other model.
class FusedModel final : public models::Model {
 public:
  /// `body` order must match the head's training-time gather order.
  FusedModel(std::string name, std::vector<models::ModelPtr> body,
             nn::Mlp head, bool head_only_on_disagreement = true);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t num_classes() const override {
    return num_classes_;
  }
  /// Body parameters plus head parameters (Fig. 9b reports this sum).
  [[nodiscard]] std::size_t parameter_count() const override;
  [[nodiscard]] tensor::Vector scores(
      const data::Record& record) const override;
  /// Batch-first fused scoring: each body model scores the whole batch
  /// (their score_batch overrides), the consensus short-circuit is applied
  /// row-wise, and the head runs one batched forward over the disagreement
  /// sub-batch only. Bit-identical, row for row, to per-record scores().
  [[nodiscard]] tensor::Matrix score_batch(
      std::span<const data::Record> records) const override;

  [[nodiscard]] const std::vector<models::ModelPtr>& body() const {
    return body_;
  }
  [[nodiscard]] const nn::Mlp& head() const { return head_; }
  [[nodiscard]] std::size_t head_parameter_count() const {
    return head_.parameter_count();
  }
  [[nodiscard]] bool head_only_on_disagreement() const {
    return head_only_on_disagreement_;
  }

 private:
  std::string name_;
  std::vector<models::ModelPtr> body_;
  // Inference runs through the const, cache-free Mlp forwards
  // (forward_inference / forward_batch_inference), so scores()/score_batch()
  // need no mutex: concurrent callers share head_ freely, honoring the
  // Model concurrency contract without serialization.
  nn::Mlp head_;
  bool head_only_on_disagreement_;
  std::size_t num_classes_;
};

/// Gather the body score matrix for a record span: column block m holds
/// body model m's scores (each computed via its score_batch override).
/// The single definition of the gather layout — FusedModel::score_batch
/// and serve::InferenceEngine both build their head input through here.
[[nodiscard]] tensor::Matrix gather_body_scores(
    const std::vector<models::ModelPtr>& body, std::size_t num_classes,
    std::span<const data::Record> records);

/// Result of fusing one gathered body-score row.
struct FusedScores {
  tensor::Vector scores;
  bool consensus = false;  ///< body agreed; the head was skipped
};

/// Fuse one gathered row (the concatenated body score vectors): the mean
/// body vector when every body argmax agrees and the gate is on (§3.2),
/// otherwise the sum-normalized head forward. The single-record arithmetic
/// reference — the batched paths must match it bit for bit, row by row.
[[nodiscard]] FusedScores fuse_gathered(std::span<const double> gathered,
                                        const nn::Mlp& head,
                                        std::size_t body_size,
                                        std::size_t num_classes,
                                        bool head_only_on_disagreement);

/// Result of fusing a whole gathered batch.
struct FusedBatch {
  tensor::Matrix scores;          ///< (n, num_classes), rows sum to 1
  std::vector<bool> consensus;    ///< per row: body agreed, head skipped
  std::size_t head_rows = 0;      ///< rows that ran the head forward
};

/// Batched fuse_gathered: row-wise consensus gate, then one batched head
/// forward over the disagreement sub-batch only. Each output row is
/// bit-identical to fuse_gathered on the same gathered row — FusedModel,
/// fused_predictions and serve::InferenceEngine all fuse through here, so
/// the per-record reference and the batched paths cannot drift.
[[nodiscard]] FusedBatch fuse_gathered_batch(const tensor::Matrix& gathered,
                                             const nn::Mlp& head,
                                             std::size_t body_size,
                                             std::size_t num_classes,
                                             bool head_only_on_disagreement);

/// Fast fused predictions over a cached dataset (used inside the search
/// loop and the benches, avoiding per-record model re-evaluation). The
/// consensus short-circuit resolves rows straight from the cache; the
/// remaining rows run through one batched head forward.
[[nodiscard]] std::vector<std::size_t> fused_predictions(
    const ScoreCache& cache, const FusingStructure& structure,
    const nn::Mlp& head, bool head_only_on_disagreement = true);

}  // namespace muffin::core
