// The model-fusing structure: muffin body + muffin head.
//
// The body is a set of frozen off-the-shelf models; the head is a trained
// MLP consuming the concatenation of their score vectors. Following §3.2
// ("the proposed technique is not going to change the output if all models
// reached consensus"), the head is consulted only when the body models
// disagree; on consensus the fused system returns the consensus class.
#pragma once

#include <memory>
#include <mutex>

#include "core/score_cache.h"
#include "models/model.h"
#include "nn/mlp.h"
#include "rl/search_space.h"

namespace muffin::core {

/// Architecture description of a fused system.
struct FusingStructure {
  std::vector<std::size_t> model_indices;  ///< body (pool indices)
  nn::MlpSpec head_spec;                   ///< muffin head MLP

  /// Build from a controller structure choice and the dataset class count.
  static FusingStructure from_choice(const rl::StructureChoice& choice,
                                     std::size_t num_classes);
};

/// A fused classifier implementing the models::Model interface, so fairness
/// metrics, compositions and reports treat it like any other model.
class FusedModel final : public models::Model {
 public:
  /// `body` order must match the head's training-time gather order.
  FusedModel(std::string name, std::vector<models::ModelPtr> body,
             nn::Mlp head, bool head_only_on_disagreement = true);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t num_classes() const override {
    return num_classes_;
  }
  /// Body parameters plus head parameters (Fig. 9b reports this sum).
  [[nodiscard]] std::size_t parameter_count() const override;
  [[nodiscard]] tensor::Vector scores(
      const data::Record& record) const override;

  [[nodiscard]] const std::vector<models::ModelPtr>& body() const {
    return body_;
  }
  [[nodiscard]] const nn::Mlp& head() const { return head_; }
  [[nodiscard]] std::size_t head_parameter_count() const {
    return head_.parameter_count();
  }
  [[nodiscard]] bool head_only_on_disagreement() const {
    return head_only_on_disagreement_;
  }

 private:
  std::string name_;
  std::vector<models::ModelPtr> body_;
  // The MLP's forward pass caches per-layer activations for backward, so a
  // logically-const scores() mutates head_. head_mutex_ serializes those
  // forwards to honor the Model concurrency contract; high-throughput
  // callers (serve::InferenceEngine) bypass the lock by running forwards on
  // per-worker copies of head() instead.
  mutable nn::Mlp head_;
  mutable std::mutex head_mutex_;
  bool head_only_on_disagreement_;
  std::size_t num_classes_;
};

/// Result of fusing one gathered body-score row.
struct FusedScores {
  tensor::Vector scores;
  bool consensus = false;  ///< body agreed; the head was skipped
};

/// Fuse one gathered row (the concatenated body score vectors): the mean
/// body vector when every body argmax agrees and the gate is on (§3.2),
/// otherwise the sum-normalized head forward. The single definition of the
/// fusing arithmetic — FusedModel::scores and serve::InferenceEngine both
/// call it, so the per-record and batched paths cannot drift.
[[nodiscard]] FusedScores fuse_gathered(std::span<const double> gathered,
                                        nn::Mlp& head, std::size_t body_size,
                                        std::size_t num_classes,
                                        bool head_only_on_disagreement);

/// Fast fused predictions over a cached dataset (used inside the search
/// loop and the benches, avoiding per-record model re-evaluation).
[[nodiscard]] std::vector<std::size_t> fused_predictions(
    const ScoreCache& cache, const FusingStructure& structure, nn::Mlp& head,
    bool head_only_on_disagreement = true);

}  // namespace muffin::core
