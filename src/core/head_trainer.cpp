#include "core/head_trainer.h"

#include "common/error.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace muffin::core {

nn::TrainingSet head_training_set(const ScoreCache& cache,
                                  const data::Dataset& dataset,
                                  const ProxyDataset& proxy,
                                  const FusingStructure& structure) {
  MUFFIN_REQUIRE(cache.num_records() == dataset.size(),
                 "cache must cover the dataset");
  MUFFIN_REQUIRE(proxy.source_size == dataset.size(),
                 "proxy must be built from this dataset");
  MUFFIN_REQUIRE(proxy.size() > 0, "proxy dataset is empty");
  const std::size_t width =
      structure.model_indices.size() * cache.num_classes();
  MUFFIN_REQUIRE(structure.head_spec.input_dim == width,
                 "head spec width must match the structure");

  nn::TrainingSet set;
  set.num_classes = cache.num_classes();
  set.features.resize(proxy.size(), width);
  set.labels.resize(proxy.size());
  set.weights.resize(proxy.size());
  for (std::size_t k = 0; k < proxy.size(); ++k) {
    const std::size_t i = proxy.indices[k];
    cache.gather(structure.model_indices, i, set.features.row(k));
    set.labels[k] = dataset.record(i).label;
    set.weights[k] = proxy.weights[k];
  }
  return set;
}

nn::Mlp train_head(const ScoreCache& cache, const data::Dataset& dataset,
                   const ProxyDataset& proxy, const FusingStructure& structure,
                   const HeadTrainConfig& config) {
  const nn::TrainingSet set =
      head_training_set(cache, dataset, proxy, structure);
  nn::Mlp head(structure.head_spec);
  SplitRng rng(config.seed);
  SplitRng init_rng = rng.fork("head-init");
  head.init(init_rng);

  nn::WeightedMse loss;  // Eq. 2
  nn::Adam optimizer(nn::AdamConfig{.learning_rate = config.learning_rate});
  nn::TrainerConfig trainer;
  trainer.epochs = config.epochs;
  trainer.batch_size = config.batch_size;
  SplitRng shuffle_rng = rng.fork("head-shuffle");
  nn::train(head, set, loss, optimizer, trainer, shuffle_rng);
  return head;
}

}  // namespace muffin::core
