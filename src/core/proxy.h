// Fairness proxy dataset (framework component #2, Algorithm 1).
//
// The muffin head is trained only on unprivileged-group data: models rarely
// disagree on privileged groups (Observation 3), so those samples carry no
// training signal for the head and are excluded.
//
// Algorithm 1 weighting:
//   for every attribute a_k, unprivileged group g of a_k, image in g:
//       w[img] += 1                      (images in several unprivileged
//                                         groups count more)
//   for every unprivileged group g:
//       w[g] = Σ_{img ∈ g} w[img] / N_g  (group weight = mean image weight)
//
// Eq. 2 then scales each sample's loss by its group weight. A sample can
// belong to one unprivileged group per attribute; following the holistic
// spirit of the algorithm we use the *mean* of the group weights of the
// unprivileged groups containing the sample as its loss weight.
#pragma once

#include <optional>

#include "common/rng.h"
#include "data/dataset.h"

namespace muffin::core {

struct ProxyConfig {
  /// Use Algorithm 1 weights; false = all-ones (the Fig. 9a ablation).
  bool use_weights = true;
  /// Subsample the proxy set to at most this many records (0 = keep all);
  /// used to bound per-episode head-training cost during search.
  std::size_t max_samples = 0;
  std::uint64_t seed = 11;
};

/// The proxy dataset: indices into the source dataset plus loss weights.
struct ProxyDataset {
  std::vector<std::size_t> indices;  ///< records in ≥1 unprivileged group
  std::vector<double> weights;       ///< per selected record (mean-1 scaled)
  /// Algorithm 1 group weights w[g]: [attribute][group], 0 for privileged
  /// groups (kept for inspection and tests).
  std::vector<std::vector<double>> group_weight;
  std::size_t source_size = 0;

  [[nodiscard]] std::size_t size() const { return indices.size(); }
};

/// Build the proxy dataset for `dataset` (typically the training split).
/// Unprivileged groups are read from the dataset metadata.
[[nodiscard]] ProxyDataset build_proxy(const data::Dataset& dataset,
                                       const ProxyConfig& config = {});

}  // namespace muffin::core
