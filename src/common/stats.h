// Small statistics helpers shared across modules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace muffin {

/// Arithmetic mean. Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values);

/// Population standard deviation. Returns 0 for spans of size < 2.
[[nodiscard]] double stddev(std::span<const double> values);

/// Pearson correlation of two equally sized spans. Returns 0 when either
/// side has zero variance. Throws muffin::Error on size mismatch.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Clamp helper mirroring std::clamp but tolerant of lo == hi.
[[nodiscard]] double clamp(double value, double lo, double hi);

/// Standard normal cumulative distribution function.
[[nodiscard]] double normal_cdf(double x);

/// Exponential moving average accumulator, used for the REINFORCE reward
/// baseline `b` in Eq. 4.
class ExponentialMovingAverage {
 public:
  /// decay in (0, 1]; a decay of 1 makes the EMA equal the last value.
  explicit ExponentialMovingAverage(double decay);

  /// Feed one observation and return the updated average.
  double update(double value);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool has_value() const { return has_value_; }

 private:
  double decay_;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Running min/max/mean tracker used in reports.
class RunningSummary {
 public:
  void add(double value);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace muffin
