// Small statistics helpers shared across modules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace muffin {

/// Arithmetic mean. Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values);

/// Population standard deviation. Returns 0 for spans of size < 2.
[[nodiscard]] double stddev(std::span<const double> values);

/// Pearson correlation of two equally sized spans. Returns 0 when either
/// side has zero variance. Throws muffin::Error on size mismatch.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Clamp helper mirroring std::clamp but tolerant of lo == hi.
[[nodiscard]] double clamp(double value, double lo, double hi);

/// Standard normal cumulative distribution function.
[[nodiscard]] double normal_cdf(double x);

namespace detail {

/// Acklam's inverse-normal-CDF rational approximation, split into the
/// central-region and tail-region pieces so the scalar normal_quantile
/// below and the vectorized batch kernels (tensor normal_planar) evaluate
/// the exact same expressions and stay bit-identical: the kernels compute
/// the branch-free central formula for every lane and overwrite the few
/// tail lanes with normal_quantile_tail in a scalar fixup pass.

/// Tail boundaries: u < kNormalQuantileLow or u > kNormalQuantileHigh is
/// the tail region; in between, the central rational applies.
inline constexpr double kNormalQuantileLow = 0.02425;
inline constexpr double kNormalQuantileHigh = 1.0 - 0.02425;

/// Central region |u - 0.5| <= 0.47575, as a function of q = u - 0.5 and
/// r = q * q. Evaluating outside the region yields garbage (the
/// denominator has a root near r ≈ 0.23) but stays trap-free, which is
/// what lets batch passes run it unconditionally before the tail fixup.
[[nodiscard]] inline double normal_quantile_central(double q, double r) {
  const double num =
      (((((-3.969683028665376e+01 * r + 2.209460984245205e+02) * r +
          -2.759285104469687e+02) * r + 1.383577518672690e+02) * r +
        -3.066479806614716e+01) * r + 2.506628277459239e+00) * q;
  const double den =
      ((((-5.447609879822406e+01 * r + 1.615858368580409e+02) * r +
         -1.556989798598866e+02) * r + 6.680131188771972e+01) * r +
       -1.328068155288572e+01) * r + 1.0;
  return num / den;
}

/// Tail region: u in (0, kNormalQuantileLow) or (kNormalQuantileHigh, 1).
[[nodiscard]] double normal_quantile_tail(double u);

}  // namespace detail

/// Inverse of the standard normal CDF (the probit function) for
/// u in (0, 1). Acklam's rational approximation: relative error below
/// 1.2e-9 everywhere, no iteration, no state — which makes one normal
/// draw cost one uniform (CounterRng::normal) and lets batch kernels
/// evaluate it as a column sweep. Throws muffin::Error outside (0, 1).
[[nodiscard]] double normal_quantile(double u);

/// Exponential moving average accumulator, used for the REINFORCE reward
/// baseline `b` in Eq. 4.
class ExponentialMovingAverage {
 public:
  /// decay in (0, 1]; a decay of 1 makes the EMA equal the last value.
  explicit ExponentialMovingAverage(double decay);

  /// Feed one observation and return the updated average.
  double update(double value);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool has_value() const { return has_value_; }

 private:
  double decay_;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Running min/max/mean tracker used in reports.
class RunningSummary {
 public:
  void add(double value);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace muffin
