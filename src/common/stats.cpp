#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace muffin {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sq = 0.0;
  for (const double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  MUFFIN_REQUIRE(xs.size() == ys.size(),
                 "pearson requires equally sized spans");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double cov = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cov += (xs[i] - mx) * (ys[i] - my);
    vx += (xs[i] - mx) * (xs[i] - mx);
    vy += (ys[i] - my) * (ys[i] - my);
  }
  if (vx == 0.0 || vy == 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

double clamp(double value, double lo, double hi) {
  MUFFIN_REQUIRE(lo <= hi, "clamp requires lo <= hi");
  return std::min(std::max(value, lo), hi);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

namespace detail {

double normal_quantile_tail(double u) {
  // Acklam's tail rational in t = sqrt(-2 ln(min(u, 1-u))), antisymmetric
  // across the median.
  const bool lower = u < 0.5;
  const double t = std::sqrt(-2.0 * std::log(lower ? u : 1.0 - u));
  const double x =
      (((((-7.784894002430293e-03 * t + -3.223964580411365e-01) * t +
          -2.400758277161838e+00) * t + -2.549732539343734e+00) * t +
        4.374664141464968e+00) * t + 2.938163982698783e+00) /
      ((((7.784695709041462e-03 * t + 3.224671290700398e-01) * t +
         2.445134137142996e+00) * t + 3.754408661907416e+00) * t + 1.0);
  return lower ? x : -x;
}

}  // namespace detail

double normal_quantile(double u) {
  MUFFIN_REQUIRE(u > 0.0 && u < 1.0, "normal_quantile requires u in (0, 1)");
  if (u < detail::kNormalQuantileLow || u > detail::kNormalQuantileHigh) {
    return detail::normal_quantile_tail(u);
  }
  const double q = u - 0.5;
  return detail::normal_quantile_central(q, q * q);
}

ExponentialMovingAverage::ExponentialMovingAverage(double decay)
    : decay_(decay) {
  MUFFIN_REQUIRE(decay > 0.0 && decay <= 1.0, "EMA decay must be in (0, 1]");
}

double ExponentialMovingAverage::update(double value) {
  if (!has_value_) {
    value_ = value;
    has_value_ = true;
  } else {
    value_ = (1.0 - decay_) * value_ + decay_ * value;
  }
  return value_;
}

void RunningSummary::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

double RunningSummary::min() const {
  MUFFIN_REQUIRE(count_ > 0, "RunningSummary::min on empty summary");
  return min_;
}

double RunningSummary::max() const {
  MUFFIN_REQUIRE(count_ > 0, "RunningSummary::max on empty summary");
  return max_;
}

double RunningSummary::mean() const {
  MUFFIN_REQUIRE(count_ > 0, "RunningSummary::mean on empty summary");
  return sum_ / static_cast<double>(count_);
}

}  // namespace muffin
