// Error handling for the muffin library.
//
// All recoverable failures are reported with muffin::Error (an exception),
// following I.10 of the C++ Core Guidelines. MUFFIN_REQUIRE is the library's
// precondition check: it states the contract at the top of a function and
// throws with location context when violated.
#pragma once

#include <stdexcept>
#include <string>

namespace muffin {

/// Exception thrown for all recoverable library failures
/// (bad arguments, dimension mismatches, invalid configurations).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Load-shed rejection: an admission-bounded queue (serve::Batcher with
/// max_queue set) is full. Thrown at enqueue, before any scoring work,
/// so overload is reported in microseconds instead of timing out deep
/// in the stack. Deliberately a distinct type: retry layers must NOT
/// retry it (a shed is a capacity signal — retrying amplifies the
/// overload), and callers are expected to back off instead.
class Overloaded : public Error {
 public:
  explicit Overloaded(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* cond,
                              const std::string& message);
}  // namespace detail

}  // namespace muffin

/// Precondition check: throws muffin::Error with file/line context when
/// `cond` does not hold. `msg` is a std::string (or convertible) explaining
/// the violated contract in the caller's vocabulary.
#define MUFFIN_REQUIRE(cond, msg)                                   \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::muffin::detail::throw_error(__FILE__, __LINE__, #cond, msg); \
    }                                                               \
  } while (false)
