#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace muffin {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MUFFIN_REQUIRE(!header_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  MUFFIN_REQUIRE(row.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row,
                              std::ostringstream& os) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  const auto render_rule = [&](std::ostringstream& os) {
    os << '+';
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };

  std::ostringstream os;
  render_rule(os);
  render_row(header_, os);
  render_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_rule(os);
    } else {
      render_row(row, os);
    }
  }
  render_rule(os);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::to_csv() const {
  const auto escape = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos &&
        cell.find('"') == std::string::npos) {
      return cell;
    }
    std::string out = "\"";
    for (const char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "," : "") << escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_percent(double fraction, int digits) {
  return format_fixed(fraction * 100.0, digits) + "%";
}

std::string format_signed_percent(double fraction, int digits) {
  std::string body = format_percent(fraction, digits);
  if (fraction >= 0.0) return "+" + body;
  return body;
}

}  // namespace muffin
