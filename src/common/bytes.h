// Explicit little-endian byte encoding and bounds-checked decoding.
//
// The RPC wire format (serve/rpc/wire.h) and the record serializer
// (data/serialize.h) both need one rule for how scalars become bytes.
// That rule lives here: every integer is stored little-endian byte by
// byte (so the encoding is identical on any host, regardless of its
// native endianness or alignment rules), and doubles travel as the
// IEEE-754 bit pattern of the value via std::bit_cast — bit-exact, which
// is what lets the remote scoring path stay bit-identical to the
// in-process one.
//
// Decoding never trusts the peer: ByteReader is a cursor over a received
// buffer that throws muffin::Error on any attempt to read past the end,
// and require_count() rejects element counts that could not possibly fit
// in the remaining bytes *before* any allocation happens — a truncated or
// hostile frame fails cleanly instead of over-reading or triggering a
// multi-gigabyte reserve.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "common/error.h"

namespace muffin::common {

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  // One 8-byte append instead of eight push_backs: on a little-endian
  // host the byte array below is the value's own representation, and
  // this function is the serializer's innermost loop (every double of
  // every record/score row goes through it).
  std::array<std::uint8_t, 8> bytes;
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
  out.insert(out.end(), bytes.begin(), bytes.end());
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Append a whole double span (the bulk path for feature vectors and
/// score-matrix rows): one resize, then tight stores.
inline void put_f64_span(std::vector<std::uint8_t>& out,
                         std::span<const double> values) {
  const std::size_t at = out.size();
  out.resize(at + values.size() * 8);
  std::uint8_t* dst = out.data() + at;
  for (const double value : values) {
    const std::uint64_t v = std::bit_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
      dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    dst += 8;
  }
}

/// Overwrite 8 bytes at `at` with the little-endian encoding of `v`.
/// Used to patch a length field after the payload it describes is known.
inline void patch_u64(std::vector<std::uint8_t>& out, std::size_t at,
                      std::uint64_t v) {
  MUFFIN_REQUIRE(at + 8 <= out.size(), "patch_u64 out of range");
  for (int i = 0; i < 8; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Bounds-checked cursor over a received byte buffer. Every read throws
/// muffin::Error when the buffer is shorter than the encoding claims.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  [[nodiscard]] std::uint16_t u16() {
    require(2, "u16");
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t u32() {
    require(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    require(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::uint8_t u8() {
    require(1, "u8");
    return data_[pos_++];
  }

  /// Bulk-decode `count` doubles into `out` (appended): one bounds
  /// check, then tight loads — the decoder's mirror of put_f64_span.
  void f64_into(std::vector<double>& out, std::size_t count) {
    require(count * 8, "f64 span");
    const std::uint8_t* src = data_.data() + pos_;
    const std::size_t at = out.size();
    out.resize(at + count);
    for (std::size_t k = 0; k < count; ++k) {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
      }
      out[at + k] = std::bit_cast<double>(v);
      src += 8;
    }
    pos_ += count * 8;
  }

  /// Read `n` raw bytes.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n, "bytes");
    const std::span<const std::uint8_t> view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  /// Reject a decoded element count that cannot fit in the remaining
  /// buffer (`count * elem_bytes` would over-read). Call this before
  /// reserving storage for `count` elements so a hostile length field
  /// fails cleanly instead of allocating gigabytes.
  void require_count(std::uint64_t count, std::size_t elem_bytes) const {
    MUFFIN_REQUIRE(elem_bytes == 0 ||
                       count <= remaining() / elem_bytes,
                   "decoded count exceeds remaining frame bytes");
  }

 private:
  void require(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw Error(std::string("truncated frame: need ") + what + " at byte " +
                  std::to_string(pos_) + " of " + std::to_string(data_.size()));
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace muffin::common
