#include "common/failpoint.h"

#if !defined(MUFFIN_FAILPOINTS_DISABLED)

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "common/hash.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace muffin::fail {

namespace {

struct Site {
  Spec spec;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> draws{0};
  std::uint64_t seed = 0;            ///< fnv1a64 of the site name
  obs::Counter* counter = nullptr;   ///< failpoint.<site> hit counter
};

/// All failpoint state. `armed` mirrors the number of sites whose action
/// is not Off, so a disarmed process pays one relaxed load per call
/// site. Site entries are heap-allocated for address stability across
/// map rehashes (they hold atomics).
struct Registry {
  mutable std::shared_mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<Site>> sites;
  std::atomic<std::size_t> armed{0};
};

void apply_spec(Registry& reg, std::string_view site, const Spec& spec) {
  MUFFIN_REQUIRE(!site.empty(), "failpoint site name is empty");
  const std::unique_lock<std::shared_mutex> lock(reg.mutex);
  auto it = reg.sites.find(std::string(site));
  if (it == reg.sites.end()) {
    auto entry = std::make_unique<Site>();
    entry->seed = fnv1a64(site);
    entry->counter =
        &obs::registry().counter("failpoint." + std::string(site));
    it = reg.sites.emplace(std::string(site), std::move(entry)).first;
  }
  it->second->spec = spec;
  if (spec.action != Action::Off) {
    // Re-arming restarts the draw stream: the fault pattern is a pure
    // function of (site name, draws since arming), so every arming
    // session — and every process run — replays identically.
    it->second->draws.store(0, std::memory_order_relaxed);
  }
  std::size_t armed = 0;
  for (const auto& [name, entry] : reg.sites) {
    if (entry->spec.action != Action::Off) {
      ++armed;
    }
  }
  reg.armed.store(armed, std::memory_order_relaxed);
}

[[noreturn]] void bad_spec(std::string_view token, const char* why) {
  throw Error("bad failpoint spec '" + std::string(token) + "': " + why);
}

double parse_probability(std::string_view token, std::string_view text) {
  const std::string copy(text);
  char* end = nullptr;
  const double p = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || !(p >= 0.0) || p > 1.0) {
    bad_spec(token, "probability must be a number in [0, 1]");
  }
  return p;
}

std::chrono::milliseconds parse_delay(std::string_view token,
                                      std::string_view text) {
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  std::string_view suffix(end, copy.c_str() + copy.size() - end);
  double ms = value;
  if (suffix == "s") {
    ms = value * 1000.0;
  } else if (!suffix.empty() && suffix != "ms") {
    bad_spec(token, "delay must be `<N>ms`, `<N>s`, or a bare ms count");
  }
  if (end == copy.c_str() || !(ms >= 0.0)) {
    bad_spec(token, "delay must be a non-negative duration");
  }
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

std::string_view trimmed(std::string_view text) {
  while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
  while (!text.empty() && text.back() == ' ') text.remove_suffix(1);
  return text;
}

/// One `site=action[:arg[:arg]]` token of the config grammar. Spaces
/// around `=` and `:` are tolerated — the env var is typed by humans.
void apply_token(Registry& reg, std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) {
    bad_spec(token, "expected site=action");
  }
  const std::string_view site = trimmed(token.substr(0, eq));
  if (site.empty()) bad_spec(token, "expected site=action");
  std::string_view rhs = trimmed(token.substr(eq + 1));
  const std::size_t colon = rhs.find(':');
  const std::string_view action =
      trimmed(colon == std::string_view::npos ? rhs : rhs.substr(0, colon));
  std::string_view args =
      colon == std::string_view::npos
          ? std::string_view{}
          : trimmed(rhs.substr(colon + 1));

  Spec spec;
  if (action == "off") {
    if (!args.empty()) bad_spec(token, "off takes no arguments");
    spec.action = Action::Off;
  } else if (action == "error") {
    spec.action = Action::Error;
    if (!args.empty()) spec.probability = parse_probability(token, args);
  } else if (action == "delay") {
    spec.action = Action::Delay;
    if (args.empty()) bad_spec(token, "delay needs a duration");
    const std::size_t split = args.find(':');
    spec.delay = parse_delay(
        token, trimmed(split == std::string_view::npos ? args
                                                       : args.substr(0, split)));
    if (split != std::string_view::npos) {
      spec.probability =
          parse_probability(token, trimmed(args.substr(split + 1)));
    }
  } else {
    bad_spec(token, "action must be off, error, or delay");
  }
  apply_spec(reg, site, spec);
}

void apply_config(Registry& reg, std::string_view config) {
  std::size_t start = 0;
  while (start <= config.size()) {
    std::size_t end = config.find(';', start);
    if (end == std::string_view::npos) end = config.size();
    std::string_view token = config.substr(start, end - start);
    while (!token.empty() && token.front() == ' ') token.remove_prefix(1);
    while (!token.empty() && token.back() == ' ') token.remove_suffix(1);
    if (!token.empty()) {
      apply_token(reg, token);
    }
    start = end + 1;
  }
}

/// Process-wide registry; arms from MUFFIN_FAILPOINTS exactly once, on
/// first touch of any failpoint API.
Registry& registry() {
  static Registry* reg = [] {
    auto* r = new Registry();  // leaked: outlives threads firing at exit
    if (const char* env = std::getenv("MUFFIN_FAILPOINTS")) {
      apply_config(*r, env);
    }
    return r;
  }();
  return *reg;
}

}  // namespace

void configure(std::string_view config) { apply_config(registry(), config); }

void configure(std::string_view site, const Spec& spec) {
  apply_spec(registry(), site, spec);
}

void clear(std::string_view site) { apply_spec(registry(), site, Spec{}); }

void clear_all() {
  Registry& reg = registry();
  const std::unique_lock<std::shared_mutex> lock(reg.mutex);
  for (auto& [name, entry] : reg.sites) {
    entry->spec = Spec{};
  }
  reg.armed.store(0, std::memory_order_relaxed);
}

bool any_active() {
  return registry().armed.load(std::memory_order_relaxed) != 0;
}

bool fires(std::string_view site) {
  Registry& reg = registry();
  if (reg.armed.load(std::memory_order_relaxed) == 0) {
    return false;  // the production fast path: no failpoints armed
  }
  Site* entry = nullptr;
  Spec spec;
  {
    const std::shared_lock<std::shared_mutex> lock(reg.mutex);
    const auto it = reg.sites.find(std::string(site));
    if (it == reg.sites.end()) return false;
    entry = it->second.get();
    spec = entry->spec;
  }
  if (spec.action == Action::Off) return false;
  if (spec.probability < 1.0) {
    // Draw i of a site is a pure function of (site name, i): chaos runs
    // with a fixed request schedule see a reproducible fault pattern.
    std::uint64_t state =
        entry->seed +
        0x9e3779b97f4a7c15ULL * entry->draws.fetch_add(1, std::memory_order_relaxed);
    if (counter_unit(splitmix64_next(state)) >= spec.probability) {
      return false;
    }
  }
  entry->hits.fetch_add(1, std::memory_order_relaxed);
  entry->counter->inc();
  if (spec.action == Action::Delay) {
    std::this_thread::sleep_for(spec.delay);
    return false;
  }
  return true;
}

void maybe_fail(std::string_view site) {
  if (fires(site)) {
    throw Error("failpoint: injected fault at " + std::string(site));
  }
}

std::uint64_t hits(std::string_view site) {
  Registry& reg = registry();
  const std::shared_lock<std::shared_mutex> lock(reg.mutex);
  const auto it = reg.sites.find(std::string(site));
  return it == reg.sites.end()
             ? 0
             : it->second->hits.load(std::memory_order_relaxed);
}

}  // namespace muffin::fail

#endif  // !MUFFIN_FAILPOINTS_DISABLED
