#include "common/error.h"

#include <sstream>

namespace muffin::detail {

void throw_error(const char* file, int line, const char* cond,
                 const std::string& message) {
  std::ostringstream os;
  os << message << " [requirement `" << cond << "` failed at " << file << ':'
     << line << ']';
  throw Error(os.str());
}

}  // namespace muffin::detail
