#include "common/log.h"

#include <atomic>
#include <iostream>

namespace muffin {

namespace {
std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{LogLevel::Warn};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { level_storage().store(level); }

LogLevel log_level() { return level_storage().load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (level == LogLevel::Off) return;
  std::cerr << "[muffin:" << level_name(level) << "] " << message << '\n';
}

}  // namespace muffin
