#include "common/log.h"

#include <atomic>
#include <iostream>

namespace muffin {

namespace {
std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{LogLevel::Warn};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { level_storage().store(level); }

LogLevel log_level() { return level_storage().load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (level == LogLevel::Off) return;
  // Format the whole line first and emit it as ONE stream write: separate
  // stream ops (tag, message, newline) interleave across threads and
  // shear lines under load. A single write through cerr keeps lines whole
  // (libstdc++ stream writes of one buffer are not split mid-buffer) and
  // stays ordered with other cerr users like gtest's capture machinery.
  std::string line;
  line.reserve(12 + message.size());
  line += "[muffin:";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  std::cerr.flush();
}

}  // namespace muffin
