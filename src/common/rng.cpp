#include "common/rng.h"

#include "common/error.h"
#include "common/hash.h"

namespace muffin {

std::uint64_t stream_purpose_prefix(std::string_view purpose) {
  return fnv1a64_continue(fnv1a64(purpose), ":");
}

std::uint64_t stream_name_hash(std::string_view purpose, std::uint64_t uid) {
  return stream_name_hash(stream_purpose_prefix(purpose),
                          UidDigits(uid).view());
}

SplitRng SplitRng::fork(std::string_view name) const {
  return SplitRng(fork_seed(seed_, fnv1a64(name)));
}

double SplitRng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double SplitRng::uniform(double lo, double hi) {
  MUFFIN_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t SplitRng::index(std::size_t n) {
  MUFFIN_REQUIRE(n > 0, "index(n) requires n > 0");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double SplitRng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double SplitRng::normal(double mean, double stddev) {
  MUFFIN_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool SplitRng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t SplitRng::categorical(const std::vector<double>& weights) {
  MUFFIN_REQUIRE(!weights.empty(), "categorical requires weights");
  double total = 0.0;
  for (const double w : weights) {
    MUFFIN_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  MUFFIN_REQUIRE(total > 0.0, "categorical requires a positive weight");
  double point = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point <= 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: landed past the last bucket
}

std::vector<std::size_t> SplitRng::sample_without_replacement(std::size_t n,
                                                              std::size_t k) {
  MUFFIN_REQUIRE(k <= n, "cannot sample more items than the population");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  shuffle(pool);
  pool.resize(k);
  return pool;
}

}  // namespace muffin
