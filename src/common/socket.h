// Thin POSIX socket helpers for the cross-process serving tier.
//
// The RPC layer (serve/rpc/) needs exactly four things from the OS:
// parse an endpoint spec, listen on it, connect to it, and move whole
// buffers with deadlines. Everything here is a direct RAII wrapper over
// those syscalls — no framing, no protocol, no buffering policy; that
// lives in serve/rpc/wire.h where it can be unit-tested without a
// kernel in the loop.
//
// Endpoints come in two flavors, chosen by the spec string:
//   "host:port"        TCP (port 0 binds an ephemeral port; the resolved
//                      port is readable from ListenSocket::local())
//   "unix:/some/path"  Unix-domain stream socket (the listener unlinks
//                      the path on close)
//
// Deadlines: recv_all/send_all take a timeout in milliseconds (-1 blocks
// forever) implemented with poll(), so a dead peer turns into a
// muffin::Error instead of a hung thread. All sends use MSG_NOSIGNAL —
// a vanished peer is an exception, never a SIGPIPE.
//
// Thread safety: a Socket may be used by one reader thread and one
// writer thread concurrently (the full-duplex pattern the RPC client and
// server use); shutdown_both() may be called from any thread to wake
// both of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace muffin::common {

/// A parsed endpoint spec: TCP "host:port" or Unix-domain "unix:/path".
struct Endpoint {
  bool unix_domain = false;
  std::string host;         ///< TCP host, or the socket path for unix
  std::uint16_t port = 0;   ///< TCP only; 0 asks the kernel for a port

  /// Parse "host:port" or "unix:/path"; throws muffin::Error on anything
  /// else (missing colon, non-numeric or out-of-range port, empty path).
  [[nodiscard]] static Endpoint parse(const std::string& spec);

  [[nodiscard]] std::string to_string() const;
};

/// RAII stream socket (one file descriptor).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Send the whole buffer; throws muffin::Error on any failure or if
  /// the deadline expires mid-buffer.
  void send_all(const void* data, std::size_t n, int timeout_ms = -1);

  /// Receive exactly `n` bytes. Returns false on a clean EOF before the
  /// first byte (peer closed between messages); throws muffin::Error on
  /// mid-buffer EOF, socket error, or deadline expiry.
  [[nodiscard]] bool recv_all(void* data, std::size_t n, int timeout_ms = -1);

  /// Poll for readability (data, EOF, or error pending) without
  /// consuming anything. Lets a reader interleave deadline checks with
  /// blocking receives.
  [[nodiscard]] bool readable(int timeout_ms);

  /// shutdown(SHUT_RDWR): wakes any thread blocked in recv/send on this
  /// socket (they observe EOF / error). Safe to call from another thread;
  /// safe on an invalid socket.
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// Connect to `endpoint` with a connect deadline; throws muffin::Error
/// on failure (refused, unreachable, timeout).
[[nodiscard]] Socket connect_endpoint(const Endpoint& endpoint,
                                      int timeout_ms);

/// RAII listening socket (TCP with SO_REUSEADDR, or Unix-domain; the
/// Unix path is unlinked when the listener closes).
class ListenSocket {
 public:
  explicit ListenSocket(const Endpoint& endpoint, int backlog = 64);
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// The bound endpoint with the kernel-resolved port (for port-0 binds).
  [[nodiscard]] const Endpoint& local() const { return local_; }

  /// Wait up to `timeout_ms` for one connection (-1 blocks forever).
  /// Returns an invalid Socket on timeout or once the listener is closed.
  [[nodiscard]] Socket accept(int timeout_ms);

  /// Wake a concurrently blocked accept() (it returns invalid) without
  /// invalidating the descriptor. Safe from any thread; the fd is only
  /// released by close()/the destructor, which must run after the
  /// accepting thread has been joined.
  void interrupt();

  /// Stop listening (idempotent); future accepts return invalid. Not
  /// safe concurrently with a blocked accept() — interrupt() first.
  void close();

 private:
  int fd_ = -1;
  Endpoint local_;
};

}  // namespace muffin::common
