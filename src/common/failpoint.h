// Failpoint injection for fault-tolerance testing.
//
// A failpoint is a named site in production code (e.g. "socket.send",
// "serve.engine.score") where a fault can be injected at runtime:
// either an error (the site throws muffin::Error) or a delay (the site
// sleeps), each with an optional firing probability. Sites are armed
// from the MUFFIN_FAILPOINTS environment variable or programmatically
// from tests:
//
//   MUFFIN_FAILPOINTS="rpc.client.send=error:0.05;serve.engine.score=delay:20ms"
//
// Config grammar (semicolon-separated `site=spec` pairs):
//   site=off              disarm the site
//   site=error[:p]        throw with probability p (default 1.0)
//   site=delay:D[:p]      sleep D with probability p; D is `20ms`,
//                         `1s`, or a bare number of milliseconds
//
// Every actual firing increments a `failpoint.<site>` counter in the
// obs registry (visible over the Stats RPC), plus a per-site hit count
// readable via hits() for tests. Probability draws are deterministic
// per site (a splitmix64 counter stream seeded from the site name), so
// a chaos run with a fixed request count sees a reproducible fault
// pattern.
//
// This mirrors the MUFFIN_OBS compile-out pattern: configure CMake with
// -DMUFFIN_FAILPOINTS=OFF and every call here becomes an inline no-op
// (a disarmed `fires()` in the ON build is a single relaxed atomic
// load, so the default build stays within the metrics-overhead gate).
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

namespace muffin::fail {

/// Whether failpoint support was compiled in (MUFFIN_FAILPOINTS=ON).
constexpr bool compiled_in() {
#if defined(MUFFIN_FAILPOINTS_DISABLED)
  return false;
#else
  return true;
#endif
}

enum class Action { Off, Error, Delay };

struct Spec {
  Action action = Action::Off;
  double probability = 1.0;
  std::chrono::milliseconds delay{0};
};

#if defined(MUFFIN_FAILPOINTS_DISABLED)

inline void configure(std::string_view) {}
inline void configure(std::string_view, const Spec&) {}
inline void clear(std::string_view) {}
inline void clear_all() {}
[[nodiscard]] inline bool any_active() { return false; }
[[nodiscard]] inline bool fires(std::string_view) { return false; }
inline void maybe_fail(std::string_view) {}
[[nodiscard]] inline std::uint64_t hits(std::string_view) { return 0; }

#else

/// Parse and apply a MUFFIN_FAILPOINTS-style config string. Throws
/// muffin::Error on a malformed spec. Sites not named keep their state.
void configure(std::string_view config);

/// Arm (or disarm, with Action::Off) one site programmatically.
void configure(std::string_view site, const Spec& spec);

/// Disarm one site (hit counts survive).
void clear(std::string_view site);

/// Disarm every site (hit counts survive).
void clear_all();

/// True when at least one site is armed — the fast-path guard every
/// call site takes before doing any real work.
[[nodiscard]] bool any_active();

/// Evaluate the site: returns true when an armed `error` action fires
/// (the caller throws, or use maybe_fail). A `delay` action sleeps
/// here and returns false. Disarmed or missed-probability sites return
/// false. Counts a hit for any actual firing.
[[nodiscard]] bool fires(std::string_view site);

/// fires(), throwing muffin::Error("failpoint: injected fault at
/// <site>") when an error action fires.
void maybe_fail(std::string_view site);

/// Lifetime hit count for the site (fired errors + applied delays).
[[nodiscard]] std::uint64_t hits(std::string_view site);

#endif  // MUFFIN_FAILPOINTS_DISABLED

/// RAII guard for tests: disarms every failpoint on destruction, so a
/// throwing assertion cannot leak an armed site into later tests.
class ScopedFailpoints {
 public:
  ScopedFailpoints() = default;
  explicit ScopedFailpoints(std::string_view config) { configure(config); }
  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;
  ~ScopedFailpoints() { clear_all(); }
};

}  // namespace muffin::fail
