// Partitioned parallel-for over the process-wide worker pool.
//
// parallel_for(n, grain, body) splits the index range [0, n) into
// contiguous blocks of at least `grain` indices and runs
// body(begin, end) for each block, using the shared pool returned by
// global_pool(). It is the one threading primitive the hot paths use:
// GEMM row-blocks (tensor/ops.cpp), CalibratedModel / FusedModel
// score_batch row splits, and anything later that needs data
// parallelism — all drawing from the same pool as the serving engine
// and MuffinSearch, so components never compete with per-call threads.
//
// Guarantees:
//  * Every index in [0, n) is covered by exactly one body(begin, end)
//    call with begin < end; blocks are contiguous and ascending per call
//    site. Work that makes each output element entirely inside one block
//    (e.g. GEMM row-blocks) is therefore bit-identical to a serial run.
//  * The calling thread participates: one block always runs inline, so a
//    one-worker pool (or an empty queue slot) never deadlocks a caller.
//  * Nested use is safe and serial: when the caller is already a pool
//    worker (ThreadPool::current_worker() != npos) — an engine batch job
//    or a MuffinSearch episode evaluating a kernel — the whole range runs
//    inline on that worker instead of re-entering the pool, which would
//    risk worker-starvation deadlock.
//  * Exceptions from body propagate: the first block exception is
//    rethrown to the caller after all blocks finished (no detached work
//    left touching caller state).
//
// Serial fallbacks (n <= grain, single-worker pool, nested calls,
// MUFFIN_THREADS=1) run body(0, n) in one call on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace muffin::common {

/// The process-wide worker pool, created on first use. Sized by the
/// MUFFIN_THREADS environment variable when set (minimum 1), otherwise
/// std::thread::hardware_concurrency(). The serving engine, MuffinSearch
/// and parallel_for all share this instance.
[[nodiscard]] ThreadPool& global_pool();

/// Number of workers global_pool() has (or would have): reads the
/// configuration without forcing pool creation on the first call.
[[nodiscard]] std::size_t global_pool_size();

namespace detail {
/// Out-of-line parallel path; requires a partition of at least 2 blocks.
void parallel_for_impl(std::size_t n, std::size_t grain,
                       const std::function<void(std::size_t, std::size_t)>&
                           body);
}  // namespace detail

/// Run body(begin, end) over a partition of [0, n) as described above.
/// `grain` is the minimum block size (0 is treated as 1). The serial
/// fallbacks (nested-in-worker, single-worker pool, range below two
/// grains) are decided inline before any allocation, so kernels called
/// from pool workers — every engine batch and search episode — pay two
/// thread-local/static reads and no std::function or partition vector.
template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body) {
  if (n == 0) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  if (n / g < 2 || global_pool_size() <= 1 ||
      ThreadPool::current_worker() != ThreadPool::npos) {
    body(std::size_t{0}, n);
    return;
  }
  detail::parallel_for_impl(
      n, g, std::function<void(std::size_t, std::size_t)>(
                std::forward<Body>(body)));
}

/// The partition parallel_for would use for `n` indices at `grain` with
/// `workers` pool threads: contiguous ascending [begin, end) blocks, every
/// index exactly once, each block at least `grain` indices (never more
/// blocks than workers; a single block means "run inline"). Exposed so the
/// partition rules are testable without depending on the machine's pool.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
partition_blocks(std::size_t n, std::size_t grain, std::size_t workers);

}  // namespace muffin::common

namespace muffin {
using common::global_pool;
using common::parallel_for;
}  // namespace muffin
