#include "common/hash.h"

#include <algorithm>

#include "common/error.h"

namespace muffin {

namespace {

/// Ring point of virtual node `v` of `node`. Salted so node ids (small
/// integers in practice) land far apart even for adjacent ids.
std::uint64_t ring_point(std::uint64_t node, std::size_t v) {
  return hash_combine(mix64(node ^ 0x9d4c7c3a11e5b3f1ULL),
                      static_cast<std::uint64_t>(v));
}

}  // namespace

HashRing::HashRing(std::size_t virtual_nodes) : virtual_nodes_(virtual_nodes) {
  MUFFIN_REQUIRE(virtual_nodes_ > 0, "hash ring needs virtual_nodes >= 1");
}

void HashRing::add(std::uint64_t node) {
  MUFFIN_REQUIRE(!contains(node), "node is already on the ring");
  members_.insert(
      std::lower_bound(members_.begin(), members_.end(), node), node);
  ring_.reserve(ring_.size() + virtual_nodes_);
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    const std::pair<std::uint64_t, std::uint64_t> point{ring_point(node, v),
                                                        node};
    ring_.insert(std::lower_bound(ring_.begin(), ring_.end(), point), point);
  }
}

void HashRing::remove(std::uint64_t node) {
  MUFFIN_REQUIRE(contains(node), "node is not on the ring");
  members_.erase(std::lower_bound(members_.begin(), members_.end(), node));
  std::erase_if(ring_, [node](const auto& p) { return p.second == node; });
}

bool HashRing::contains(std::uint64_t node) const {
  return std::binary_search(members_.begin(), members_.end(), node);
}

std::uint64_t HashRing::node_for(std::uint64_t key) const {
  MUFFIN_REQUIRE(!ring_.empty(), "lookup on an empty hash ring");
  const std::uint64_t h = mix64(key);
  // First ring point at or after h; wrap to the start past the last point.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& p, std::uint64_t value) { return p.first < value; });
  return it == ring_.end() ? ring_.front().second : it->second;
}

std::optional<std::uint64_t> HashRing::node_for_excluding(
    std::uint64_t key, const std::vector<std::uint64_t>& avoid) const {
  MUFFIN_REQUIRE(!ring_.empty(), "lookup on an empty hash ring");
  const std::uint64_t h = mix64(key);
  const auto first = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& p, std::uint64_t value) { return p.first < value; });
  const std::size_t start =
      static_cast<std::size_t>(first - ring_.begin()) % ring_.size();
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::uint64_t node = ring_[(start + i) % ring_.size()].second;
    if (std::find(avoid.begin(), avoid.end(), node) == avoid.end()) {
      return node;
    }
  }
  return std::nullopt;
}

}  // namespace muffin
