#include "common/parallel_for.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace muffin::common {

namespace {

std::size_t configured_pool_size() {
  if (const char* env = std::getenv("MUFFIN_THREADS");
      env != nullptr && *env != '\0') {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool& global_pool() {
  // Created on first use, joined after main via static destruction. All
  // in-tree users (engine shutdown, parallel_for) wait for their own jobs,
  // so no job outlives its captures.
  static ThreadPool pool(configured_pool_size());
  return pool;
}

std::size_t global_pool_size() {
  static const std::size_t size = configured_pool_size();
  return size;
}

std::vector<std::pair<std::size_t, std::size_t>> partition_blocks(
    std::size_t n, std::size_t grain, std::size_t workers) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  if (n == 0) return blocks;
  grain = std::max<std::size_t>(1, grain);
  // Floor division keeps every block at least `grain` long (n / count >=
  // grain whenever count <= n / grain); never more blocks than workers.
  const std::size_t count =
      std::max<std::size_t>(1, std::min(workers, n / grain));
  const std::size_t base = n / count;
  const std::size_t remainder = n % count;
  blocks.reserve(count);
  std::size_t begin = 0;
  for (std::size_t block = 0; block < count; ++block) {
    const std::size_t end = begin + base + (block < remainder ? 1 : 0);
    blocks.emplace_back(begin, end);
    begin = end;
  }
  return blocks;
}

namespace detail {

void parallel_for_impl(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  // The serial fallbacks ran inline in the header; a second nested check
  // here would only re-read the same thread-local.
  static obs::Counter& m_calls = obs::registry().counter("parallel_for.calls");
  static obs::Counter& m_blocks =
      obs::registry().counter("parallel_for.blocks");
  const auto blocks = partition_blocks(n, grain, global_pool_size());
  m_calls.inc();
  m_blocks.inc(std::max<std::size_t>(1, blocks.size()));
  if (blocks.size() <= 1) {
    body(0, n);
    return;
  }

  // Block 0 is reserved for the calling thread, which runs it after the
  // other blocks are queued — the caller contributes a full share instead
  // of blocking idle on the futures. Every queued block references caller
  // state, so this frame must never unwind before all of them finished:
  // even a submit() failure mid-loop (allocation, stopping pool) drains
  // the already-queued futures before rethrowing.
  ThreadPool& pool = global_pool();
  std::vector<std::future<void>> futures;
  futures.reserve(blocks.size() - 1);
  std::exception_ptr failure;
  try {
    for (std::size_t block = 1; block < blocks.size(); ++block) {
      const std::size_t begin = blocks[block].first;
      const std::size_t end = blocks[block].second;
      futures.push_back(pool.submit([&body, begin, end]() {
        body(begin, end);
      }));
    }
  } catch (...) {
    failure = std::current_exception();
  }

  if (failure == nullptr) {
    try {
      body(blocks[0].first, blocks[0].second);
    } catch (...) {
      failure = std::current_exception();
    }
  }
  // Always drain every block before returning (or rethrowing): blocks
  // reference caller state, so none may outlive this frame.
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (failure == nullptr) failure = std::current_exception();
    }
  }
  if (failure != nullptr) std::rethrow_exception(failure);
}

}  // namespace detail

}  // namespace muffin::common
