// Plain-text table and CSV rendering used by the benchmark harnesses to
// print paper-style tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace muffin {

/// A simple left-aligned text table. Columns are sized to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must match the header's column count.
  void add_row(std::vector<std::string> row);
  /// Append a horizontal rule (rendered as a dashed separator).
  void add_rule();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  /// Render as CSV (rules are skipped; cells containing commas are quoted).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Format helpers shared by the benches.
[[nodiscard]] std::string format_fixed(double value, int digits);
[[nodiscard]] std::string format_percent(double fraction, int digits = 2);
/// Signed percentage-point delta, e.g. "+19.44%" / "-1.85%".
[[nodiscard]] std::string format_signed_percent(double fraction,
                                                int digits = 2);

}  // namespace muffin
