// Stable 64-bit hashing and consistent-hash placement.
//
// The serving tier routes requests by record uid, so the hash functions
// here must be (a) deterministic across runs and platforms — a shard map
// computed today must match one computed tomorrow — and (b) well mixed,
// because uids are often small sequential integers and the ring relies on
// uniform placement. `mix64` is the splitmix64 finalizer (Steele et al.),
// the standard cheap bijective mixer; `splitmix64_next` is the matching
// sequential stream used where a lightweight deterministic RNG is enough
// (reservoir sampling in LatencyStats, tie-breaking in tests).
//
// HashRing implements consistent hashing with virtual nodes: each node
// owns `virtual_nodes` pseudo-random points on a 64-bit ring and a key is
// served by the node owning the first point at or after the key's hash
// (wrapping). Adding or removing one node therefore only remaps the keys
// adjacent to that node's points — expected K/N of K keys for N nodes —
// which is what keeps per-shard result memos hot across reshards.
// HashRing itself is not thread-safe; callers (serve::ShardRouter)
// synchronize around topology changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace muffin {

/// splitmix64 finalizer: a bijective avalanche mix of one 64-bit word.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One step of the splitmix64 stream: advances `state`, returns a uniform
/// 64-bit value. Same (state) sequence on every platform.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  return mix64(state);
}

/// Order-dependent combination of two 64-bit hashes.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Consistent-hash ring with virtual nodes.
class HashRing {
 public:
  /// `virtual_nodes` ring points per node; more points give a smoother
  /// key distribution at the cost of a larger ring (lookup is O(log V·N)).
  explicit HashRing(std::size_t virtual_nodes = 64);

  /// Place `node` on the ring. Throws if it is already present.
  void add(std::uint64_t node);

  /// Take `node` off the ring; its keys remap to ring successors. Throws
  /// if the node is not present.
  void remove(std::uint64_t node);

  [[nodiscard]] bool contains(std::uint64_t node) const;
  [[nodiscard]] std::size_t nodes() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return ring_.empty(); }
  [[nodiscard]] std::size_t virtual_nodes() const { return virtual_nodes_; }

  /// The node owning `key` (the key is mixed internally, so raw sequential
  /// uids are fine). Throws if the ring is empty.
  [[nodiscard]] std::uint64_t node_for(std::uint64_t key) const;

  /// The first node for `key`, walking the ring clockwise, that is not in
  /// `avoid` — the failover successor when the owners in `avoid` have
  /// already failed the request. With an empty avoid list this is exactly
  /// node_for. Returns nullopt when every member is avoided; throws if
  /// the ring is empty.
  [[nodiscard]] std::optional<std::uint64_t> node_for_excluding(
      std::uint64_t key, const std::vector<std::uint64_t>& avoid) const;

 private:
  std::size_t virtual_nodes_;
  /// Sorted (ring point, node) pairs; ties broken by node id so the map is
  /// deterministic regardless of insertion order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ring_;
  std::vector<std::uint64_t> members_;  ///< sorted distinct node ids
};

}  // namespace muffin
