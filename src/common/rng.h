// Deterministic random number generation.
//
// Every stochastic component of the library draws from a SplitRng seeded
// explicitly by the caller; there is no global random state (I.2). SplitRng
// supports *named substreams* (`fork`), so independent components (dataset
// generation, model calibration, controller sampling, head initialization)
// get decorrelated, reproducible streams from one master seed.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace muffin {

[[nodiscard]] double normal_quantile(double u);  // common/stats.h

/// Deterministic RNG wrapper around std::mt19937_64 with named substreams.
class SplitRng {
 public:
  explicit SplitRng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derive an independent, reproducible substream. The same (seed, name)
  /// pair always yields the same stream, regardless of draw order elsewhere.
  [[nodiscard]] SplitRng fork(std::string_view name) const;

  /// Uniform real in [0, 1).
  double uniform();
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// Standard normal draw.
  double normal();
  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);
  /// Sample an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);
  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }
  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// Map 64 random bits to a uniform double in the open interval (0, 1):
/// the top 53 bits centered on half-steps of the 2^-53 grid. Zero bits
/// give 2^-54 > 0; at the top, (2^53 - 1) + 0.5 ties-to-even up to 2^53,
/// so the all-ones draw would land exactly on 1.0 — it saturates to the
/// largest double below 1 instead, keeping the interval genuinely open
/// for quantile transforms. The clamp compiles to a branch-free min, so
/// the scalar and planar sweeps stay bit-identical.
[[nodiscard]] constexpr double counter_unit(std::uint64_t bits) {
  const double u = (static_cast<double>(bits >> 11) + 0.5) * 0x1.0p-53;
  return u < 1.0 ? u : 0x1.fffffffffffffp-1;
}

/// Counter-derived deterministic sampler over the splitmix64 stream
/// (common/hash.h).
///
/// SplitRng costs microseconds to *seed* (mt19937_64 state expansion),
/// which is fine for components that seed once and draw thousands of
/// times but fatal for paths that derive several fresh substreams per
/// record — the calibrated scoring kernel derives six. CounterRng
/// construction is free, each draw is a handful of integer ops, and draw
/// i of a stream is a pure function of (stream_seed, i), so batch kernels
/// can fill whole per-stream arrays in one vectorizable pass
/// (tensor/ops.h normal_planar_into) that stays bit-identical to this
/// scalar API: both sides run the same splitmix64 step, the same
/// counter_unit mapping and the same normal_quantile evaluation.
///
/// Draw semantics (deliberately simpler than SplitRng, and part of the
/// reproducibility contract):
///  - uniform() is open-interval (0, 1) via counter_unit.
///  - normal() is the inverse-CDF transform of ONE uniform (SplitRng's
///    std::normal_distribution consumes an implementation-defined number
///    of draws; here the stream position is always draw-countable).
///  - bernoulli(p) always consumes exactly one draw, even for p <= 0 or
///    p >= 1 (SplitRng short-circuits those) — batch passes stay
///    draw-aligned without branching on p.
///  - index(n) maps one 64-bit draw by fixed-point scaling (bits * n)
///    >> 64; the O(n / 2^64) bias is irrelevant for simulation use.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t stream_seed) : state_(stream_seed) {}

  /// Next raw 64-bit draw (advances the stream).
  std::uint64_t next_bits() { return splitmix64_next(state_); }
  /// Uniform real in the open interval (0, 1).
  double uniform() { return counter_unit(next_bits()); }
  /// Standard normal draw: normal_quantile(uniform()).
  double normal() { return normal_quantile(uniform()); }
  /// mean + stddev * normal(); always consumes one draw.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }
  /// Bernoulli draw with success probability p; always one draw.
  bool bernoulli(double p) { return uniform() < p; }
  /// Uniform integer in [0, n). Requires n > 0; always one draw.
  std::size_t index(std::size_t n) {
    using u128 = unsigned __int128;
    return static_cast<std::size_t>(
        (static_cast<u128>(next_bits()) * static_cast<u128>(n)) >> 64);
  }

  /// Current stream state (the seed of the remaining draws).
  [[nodiscard]] std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// Continue an FNV-1a hash over more bytes; fnv1a64(a + b) ==
/// fnv1a64_continue(fnv1a64(a), b). Lets hot paths hash composite
/// substream names without building the concatenated string.
[[nodiscard]] constexpr std::uint64_t fnv1a64_continue(std::uint64_t hash,
                                                       std::string_view text) {
  for (const char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Stable 64-bit FNV-1a hash (used for substream derivation and tests).
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) {
  return fnv1a64_continue(0xcbf29ce484222325ULL, text);
}

/// Continue `Count` FNV-1a hashes over the same bytes in lock-step. Each
/// hash chain is sequential (a byte's multiply depends on the previous
/// byte's), but the chains are mutually independent — interleaving them
/// keeps the multiplier pipeline full, so deriving one record's several
/// purpose streams costs barely more than deriving one.
template <std::size_t Count>
constexpr void fnv1a64_continue_many(std::uint64_t (&hashes)[Count],
                                     std::string_view text) {
  for (const char c : text) {
    const std::uint64_t byte =
        static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    for (std::size_t i = 0; i < Count; ++i) {
      hashes[i] = (hashes[i] ^ byte) * 0x100000001b3ULL;
    }
  }
}

/// The substream seed SplitRng(seed).fork(name) derives, given
/// name_hash == fnv1a64(name). fork() is defined in terms of this; hot
/// paths use it to skip constructing the intermediate engine (mt19937_64
/// seeding is the expensive part of a SplitRng). One splitmix64 step of
/// the xor keeps adjacent names decorrelated; the arithmetic reproduces
/// the historical inline version bit for bit, so forked streams are
/// stable across refactors.
[[nodiscard]] constexpr std::uint64_t fork_seed(std::uint64_t seed,
                                                std::uint64_t name_hash) {
  std::uint64_t z = seed ^ name_hash;
  return splitmix64_next(z);
}

/// fnv1a64(purpose + ":" + std::to_string(uid)) without building the
/// string: the uid is rendered into a stack buffer and hashed
/// incrementally. The canonical substream name for per-record streams —
/// fork_seed(master, stream_name_hash(purpose, uid)) is the stream seed.
/// Batch kernels hoist the purpose prefix: hashing the digits onto a
/// cached fnv1a64_continue(fnv1a64(purpose), ":") yields the same value.
[[nodiscard]] std::uint64_t stream_name_hash(std::string_view purpose,
                                             std::uint64_t uid);

/// The hoisted purpose prefix: fnv1a64(purpose + ":"). Batch kernels
/// compute this once per purpose (or once per model) instead of once per
/// record.
[[nodiscard]] std::uint64_t stream_purpose_prefix(std::string_view purpose);

/// The decimal rendering of a uid on the stack, for deriving several
/// purpose streams of one record with a single digit pass: render once,
/// then stream_name_hash(prefix, digits.view()) per purpose.
class UidDigits {
 public:
  explicit UidDigits(std::uint64_t uid) {
    char* cursor = buffer_ + sizeof(buffer_);
    do {
      *--cursor = static_cast<char>('0' + uid % 10);
      uid /= 10;
    } while (uid != 0);
    begin_ = cursor;
  }
  [[nodiscard]] std::string_view view() const {
    return {begin_, static_cast<std::size_t>(buffer_ + sizeof(buffer_) -
                                             begin_)};
  }

 private:
  char buffer_[20];  ///< max std::uint64_t has 20 decimal digits
  const char* begin_;
};

/// Completes a stream name hash from a hoisted purpose prefix and
/// pre-rendered uid digits: stream_name_hash(purpose, uid) ==
/// stream_name_hash(stream_purpose_prefix(purpose), UidDigits(uid).view()).
[[nodiscard]] inline std::uint64_t stream_name_hash(
    std::uint64_t purpose_prefix, std::string_view uid_digits) {
  return fnv1a64_continue(purpose_prefix, uid_digits);
}

}  // namespace muffin
