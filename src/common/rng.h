// Deterministic random number generation.
//
// Every stochastic component of the library draws from a SplitRng seeded
// explicitly by the caller; there is no global random state (I.2). SplitRng
// supports *named substreams* (`fork`), so independent components (dataset
// generation, model calibration, controller sampling, head initialization)
// get decorrelated, reproducible streams from one master seed.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace muffin {

/// Deterministic RNG wrapper around std::mt19937_64 with named substreams.
class SplitRng {
 public:
  explicit SplitRng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derive an independent, reproducible substream. The same (seed, name)
  /// pair always yields the same stream, regardless of draw order elsewhere.
  [[nodiscard]] SplitRng fork(std::string_view name) const;

  /// Uniform real in [0, 1).
  double uniform();
  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// Standard normal draw.
  double normal();
  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);
  /// Sample an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);
  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }
  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// Stable 64-bit FNV-1a hash (used for substream derivation and tests).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);
/// Continue an FNV-1a hash over more bytes; fnv1a64(a + b) ==
/// fnv1a64_continue(fnv1a64(a), b). Lets hot paths hash composite
/// substream names without building the concatenated string.
[[nodiscard]] std::uint64_t fnv1a64_continue(std::uint64_t hash,
                                             std::string_view text);

/// The substream seed SplitRng(seed).fork(name) derives, given
/// name_hash == fnv1a64(name). fork() is defined in terms of this; hot
/// paths use it to skip constructing the intermediate engine (mt19937_64
/// seeding is the expensive part of a SplitRng).
[[nodiscard]] std::uint64_t fork_seed(std::uint64_t seed,
                                      std::uint64_t name_hash);

}  // namespace muffin
