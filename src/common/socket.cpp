#include "common/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.h"
#include "common/failpoint.h"

namespace muffin::common {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Milliseconds left until `deadline`, clamped to >= 0; -1 for no deadline.
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// Wait for `events` on `fd`; returns false on deadline expiry, throws on
/// poll failure. EINTR restarts with the remaining budget.
bool wait_for(int fd, short events, bool has_deadline,
              Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, remaining_ms(has_deadline, deadline));
    if (rc > 0) return true;
    if (rc == 0) return false;  // timed out
    if (errno != EINTR) throw_errno("poll");
  }
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MUFFIN_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string& host = endpoint.host.empty() ? "0.0.0.0" : endpoint.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("cannot parse IPv4 address: " + host);
  }
  return addr;
}

void set_nodelay(int fd) {
  // The RPC frames are explicit request/response units; Nagle would add
  // up to one RTT of coalescing latency to every small frame for nothing.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_nonblocking(int fd) {
  // Every data socket runs non-blocking with explicit poll()-based
  // waits. This is what makes send deadlines REAL: on a blocking socket
  // ::send can park forever once the peer stops draining its receive
  // window, and no amount of polling beforehand bounds it — a blocking
  // send only returns after the whole buffer is queued.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.unix_domain = true;
    endpoint.host = spec.substr(5);
    MUFFIN_REQUIRE(!endpoint.host.empty(),
                   "unix endpoint needs a path: " + spec);
    return endpoint;
  }
  const std::size_t colon = spec.rfind(':');
  MUFFIN_REQUIRE(colon != std::string::npos && colon + 1 < spec.size(),
                 "endpoint must be host:port or unix:/path, got: " + spec);
  endpoint.host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  unsigned long port = 0;
  try {
    std::size_t used = 0;
    port = std::stoul(port_str, &used);
    MUFFIN_REQUIRE(used == port_str.size(), "trailing junk in port");
  } catch (const std::exception&) {
    throw Error("endpoint port is not a number: " + spec);
  }
  MUFFIN_REQUIRE(port <= 65535, "endpoint port out of range: " + spec);
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

std::string Endpoint::to_string() const {
  if (unix_domain) return "unix:" + host;
  return host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t n, int timeout_ms) {
  MUFFIN_REQUIRE(valid(), "send on an invalid socket");
  fail::maybe_fail("socket.send");
  const bool has_deadline = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(fd_, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_for(fd_, POLLOUT, has_deadline, deadline)) {
        throw Error("send timed out after " + std::to_string(timeout_ms) +
                    " ms");
      }
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

bool Socket::recv_all(void* data, std::size_t n, int timeout_ms) {
  MUFFIN_REQUIRE(valid(), "recv on an invalid socket");
  fail::maybe_fail("socket.recv");
  const bool has_deadline = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t received = 0;
  while (received < n) {
    if (!wait_for(fd_, POLLIN, has_deadline, deadline)) {
      throw Error("recv timed out after " + std::to_string(timeout_ms) +
                  " ms");
    }
    const ssize_t rc = ::recv(fd_, bytes + received, n - received, 0);
    if (rc > 0) {
      received += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (received == 0) return false;  // clean EOF at a message boundary
      throw Error("peer closed mid-message (" + std::to_string(received) +
                  " of " + std::to_string(n) + " bytes)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno("recv");
  }
  return true;
}

bool Socket::readable(int timeout_ms) {
  MUFFIN_REQUIRE(valid(), "poll on an invalid socket");
  return wait_for(fd_, POLLIN, timeout_ms >= 0,
                  Clock::now() + std::chrono::milliseconds(
                                     timeout_ms < 0 ? 0 : timeout_ms));
}

void Socket::shutdown_both() {
  if (valid()) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (valid()) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Socket connect_endpoint(const Endpoint& endpoint, int timeout_ms) {
  const int family = endpoint.unix_domain ? AF_UNIX : AF_INET;
  Socket socket(::socket(family, SOCK_STREAM, 0));
  if (!socket.valid()) throw_errno("socket");

  // Non-blocking connect + poll(POLLOUT) gives a real connect deadline;
  // the default blocking connect can hang for minutes on a black-holed
  // host, which would freeze the health prober.
  int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  (void)::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK);

  int rc = 0;
  if (endpoint.unix_domain) {
    const sockaddr_un addr = make_unix_addr(endpoint.host);
    rc = ::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    const sockaddr_in addr = make_tcp_addr(endpoint);
    rc = ::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      throw_errno("connect to " + endpoint.to_string());
    }
    const bool ready = wait_for(
        socket.fd(), POLLOUT, timeout_ms >= 0,
        Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                                : timeout_ms));
    if (!ready) {
      throw Error("connect to " + endpoint.to_string() + " timed out after " +
                  std::to_string(timeout_ms) + " ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    (void)::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      throw Error("connect to " + endpoint.to_string() + ": " +
                  std::strerror(err));
    }
  }
  // Deliberately stays non-blocking: see set_nonblocking().
  if (!endpoint.unix_domain) set_nodelay(socket.fd());
  return socket;
}

ListenSocket::ListenSocket(const Endpoint& endpoint, int backlog) {
  const int family = endpoint.unix_domain ? AF_UNIX : AF_INET;
  fd_ = ::socket(family, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  local_ = endpoint;
  try {
    if (endpoint.unix_domain) {
      (void)::unlink(endpoint.host.c_str());  // stale path from a crash
      const sockaddr_un addr = make_unix_addr(endpoint.host);
      if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind " + endpoint.to_string());
      }
    } else {
      const int one = 1;
      (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      const sockaddr_in addr = make_tcp_addr(endpoint);
      if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw_errno("bind " + endpoint.to_string());
      }
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        local_.port = ntohs(bound.sin_port);
      }
    }
    if (::listen(fd_, backlog) != 0) {
      throw_errno("listen on " + endpoint.to_string());
    }
  } catch (...) {
    (void)::close(fd_);
    fd_ = -1;
    throw;
  }
}

ListenSocket::~ListenSocket() { close(); }

Socket ListenSocket::accept(int timeout_ms) {
  if (fd_ < 0) return Socket();
  const bool ready = wait_for(
      fd_, POLLIN, timeout_ms >= 0,
      Clock::now() + std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                              : timeout_ms));
  if (!ready || fd_ < 0) return Socket();
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return Socket();  // racing close(), or transient error
  set_nonblocking(client);
  if (!local_.unix_domain) set_nodelay(client);
  return Socket(client);
}

void ListenSocket::interrupt() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
    if (local_.unix_domain) (void)::unlink(local_.host.c_str());
  }
}

}  // namespace muffin::common
