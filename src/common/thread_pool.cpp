#include "common/thread_pool.h"

#include <chrono>

#include "common/error.h"
#include "obs/metrics.h"

namespace muffin::common {

namespace {
thread_local std::size_t tls_worker_index = ThreadPool::npos;

/// Process-wide pool accounting: tasks executed and time workers spent
/// parked waiting for work. One registry entry set shared by every pool
/// in the process (in practice there is one: common::global_pool()).
struct PoolMetrics {
  obs::Counter& tasks = obs::registry().counter("pool.tasks");
  obs::Counter& idle_us = obs::registry().counter("pool.idle_us");

  static PoolMetrics& get() {
    static PoolMetrics metrics;
    return metrics;
  }
};
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  MUFFIN_REQUIRE(threads > 0, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i]() { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Discard pending jobs; their packaged_task destructors break the
    // associated promises, so waiting futures fail fast instead of hanging.
    while (!jobs_.empty()) jobs_.pop();
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::current_worker() { return tls_worker_index; }

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    MUFFIN_REQUIRE(!stopping_, "cannot submit to a stopping thread pool");
    jobs_.push(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker_index = index;
  PoolMetrics& metrics = PoolMetrics::get();
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_ && jobs_.empty()) return;
      if (jobs_.empty()) {
        // Time only real parks (queue empty on arrival): the common
        // saturated case stays wait-free past the queue lock itself.
        const auto parked = std::chrono::steady_clock::now();
        wake_.wait(lock, [this]() { return stopping_ || !jobs_.empty(); });
        metrics.idle_us.inc(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - parked)
                .count()));
        if (stopping_ && jobs_.empty()) return;
      }
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    metrics.tasks.inc();
    job();  // packaged_task captures exceptions into the future
  }
}

}  // namespace muffin::common
