// Minimal leveled logger.
//
// The search driver reports episode progress through this interface; tests
// silence it, benches set Info. There is no global mutable state beyond the
// process-wide level, which is encapsulated behind functions (I.2).
#pragma once

#include <sstream>
#include <string>

namespace muffin {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the process-wide log level (default: Warn).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit a message at the given level to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace muffin

#define MUFFIN_LOG_DEBUG ::muffin::detail::LogLine(::muffin::LogLevel::Debug)
#define MUFFIN_LOG_INFO ::muffin::detail::LogLine(::muffin::LogLevel::Info)
#define MUFFIN_LOG_WARN ::muffin::detail::LogLine(::muffin::LogLevel::Warn)
#define MUFFIN_LOG_ERROR ::muffin::detail::LogLine(::muffin::LogLevel::Error)
