// Reusable fixed-size worker pool.
//
// One pool instance owns N long-lived worker threads consuming a shared job
// queue. Jobs are submitted as callables and their results (or exceptions)
// are delivered through std::future, so failures inside a worker propagate
// to whoever awaits the job instead of crashing the process. The pool is
// the shared threading substrate of the codebase: the serving engine runs
// micro-batches on it, MuffinSearch evaluates controller batches on it,
// and parallel_for (common/parallel_for.h) splits kernel row-blocks over
// it. It lives in common (not serve) so the tensor layer can partition
// GEMMs without depending on the serving runtime; serve/thread_pool.h
// re-exports it as serve::ThreadPool.
//
// Workers are numbered 0..size()-1; current_worker() returns the index of
// the pool worker executing the current job (or npos outside a worker).
// Components that keep per-worker state — e.g. the engine's per-worker
// muffin-head clones — index it with current_worker(). The index is
// per-thread, not per-pool: a worker of any pool reports its index, which
// is also how parallel_for detects nested use and degrades to serial.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace muffin::common {

class ThreadPool {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: pending jobs are discarded, running jobs complete,
  /// workers are joined. Futures of discarded jobs become broken promises.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Index of the pool worker running the current job; npos when called
  /// from a thread that is not one of this pool's workers.
  [[nodiscard]] static std::size_t current_worker();

  /// Enqueue a callable; the returned future yields its result or rethrows
  /// the exception it raised.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& job) {
    using Result = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(job));
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Number of jobs waiting in the queue (not including running jobs).
  [[nodiscard]] std::size_t pending() const;

 private:
  void enqueue(std::function<void()> job);
  void worker_loop(std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace muffin::common
