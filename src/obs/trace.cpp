#include "obs/trace.h"

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "common/log.h"

namespace muffin::obs {

namespace {

/// Small readable thread ids for the trace viewer (std::thread::id
/// hashes are unhelpfully wide).
std::uint64_t current_tid() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t tid = next.fetch_add(1);
  return tid;
}

/// Flushes the env-configured tracer at process exit so `MUFFIN_TRACE=
/// out.json muffin_cli ...` needs no explicit teardown hook.
struct AtExitFlush {
  ~AtExitFlush() { Tracer::instance().flush(); }
};

}  // namespace

Tracer::Tracer() : epoch_(Clock::now()) {
#if !defined(MUFFIN_OBS_DISABLED)
  const char* path = std::getenv("MUFFIN_TRACE");
  if (path == nullptr || *path == '\0') return;
  std::uint64_t every = 1;
  if (const char* rate_env = std::getenv("MUFFIN_TRACE_SAMPLE")) {
    const double rate = std::atof(rate_env);
    if (rate > 0.0 && rate <= 1.0) {
      every = static_cast<std::uint64_t>(std::llround(1.0 / rate));
      if (every == 0) every = 1;
    }
  }
  sample_every_.store(every, std::memory_order_relaxed);
  auto_flush_path_ = path;
  enabled_.store(true, std::memory_order_relaxed);
#endif
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  // Constructed after `tracer`, destroyed before it: the flush runs
  // while the tracer (and its event buffer) is still alive.
  static AtExitFlush at_exit;
  (void)at_exit;
  return tracer;
}

void Tracer::configure(bool enabled, std::uint64_t sample_every,
                       std::string auto_flush_path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    auto_flush_path_ = std::move(auto_flush_path);
  }
  dropped_.store(0, std::memory_order_relaxed);
  ordinal_.store(0, std::memory_order_relaxed);
  sample_every_.store(sample_every == 0 ? 1 : sample_every,
                      std::memory_order_relaxed);
  enabled_.store(enabled, std::memory_order_relaxed);
}

void Tracer::record(std::string name, double ts_us, double dur_us,
                    std::string args) {
  if (!enabled()) return;
  const std::uint64_t tid = current_tid();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(
      {std::move(name), ts_us, dur_us, tid, std::move(args)});
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

bool Tracer::write(const std::string& path) const {
  std::vector<TraceEvent> events;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::ofstream os(path);
  if (!os) return false;
  const long pid = static_cast<long>(::getpid());
  os << "{\"traceEvents\":[\n";
  os.precision(3);
  os << std::fixed;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    os << "{\"name\":\"" << event.name << "\",\"cat\":\"muffin\","
       << "\"ph\":\"X\",\"ts\":" << event.ts_us
       << ",\"dur\":" << event.dur_us << ",\"pid\":" << pid
       << ",\"tid\":" << event.tid;
    if (!event.args.empty()) os << ",\"args\":{" << event.args << "}";
    os << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  return os.good();
}

void Tracer::flush() {
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path = auto_flush_path_;
  }
  if (path.empty()) return;
  if (!write(path)) {
    MUFFIN_LOG_WARN << "could not write trace to " << path;
  }
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace muffin::obs
