// Process-wide metrics registry: the measurement substrate every serving
// layer reports through.
//
// Three metric kinds, all backed by relaxed atomics so the hot path is a
// single uncontended atomic add:
//
//  * Counter    named monotonic u64 (requests, frames, bytes, drains).
//  * Gauge      named signed level (queue depth, open connections).
//  * Histogram  fixed-bucket distribution (batch sizes, encode/decode
//               microseconds). Bucket bounds are chosen at registration
//               and never change, so observe() is a linear scan over a
//               handful of bounds plus one atomic add.
//
// Registration happens once per call site through the process-wide
// Registry (obs::registry()); the intended idiom is a function-local
// static reference so steady-state cost is exactly the atomic operation:
//
//   static obs::Counter& frames =
//       obs::registry().counter("rpc.server.frames_received");
//   frames.inc();
//
// Metrics are process-global by design: a host running four engine
// replicas reports the sum of their traffic under one name, and the
// authoritative per-replica view stays on the replica's own counters
// (EngineCounters / LatencyStats). snapshot() is a point-in-time copy;
// exposition is Prometheus text (to_prometheus) or JSON (to_json), both
// deterministic (name-sorted) so two snapshots of the same state render
// identically. reset() zeroes every registered metric (bench/test
// isolation); registered references stay valid forever — metrics are
// never unregistered.
//
// Compiled-out mode: building with -DMUFFIN_OBS_DISABLED turns every
// record operation (inc/set/add/observe) into an inline no-op while
// keeping the full API, so instrumented call sites compile unchanged and
// the overhead gate in bench_serve can compare enabled vs off builds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace muffin::obs {

/// True when metric recording is compiled in (the default build).
[[nodiscard]] constexpr bool compiled_in() {
#if defined(MUFFIN_OBS_DISABLED)
  return false;
#else
  return true;
#endif
}

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#if defined(MUFFIN_OBS_DISABLED)
    (void)n;
#else
    value_.fetch_add(n, std::memory_order_relaxed);
#endif
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#if defined(MUFFIN_OBS_DISABLED)
    (void)v;
#else
    value_.store(v, std::memory_order_relaxed);
#endif
  }
  void add(std::int64_t n) noexcept {
#if defined(MUFFIN_OBS_DISABLED)
    (void)n;
#else
    value_.fetch_add(n, std::memory_order_relaxed);
#endif
  }
  void sub(std::int64_t n) noexcept { add(-n); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  /// `bounds` are strictly increasing bucket upper bounds; values above
  /// the last bound land in the implicit +Inf bucket.
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double value) noexcept {
#if defined(MUFFIN_OBS_DISABLED)
    (void)value;
#else
    std::size_t bucket = bounds_.size();  // +Inf by default
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Relaxed CAS loop: atomic<double>::fetch_add is C++20 but the loop
    // keeps us off any libstdc++ version cliff, and sums are cold next
    // to the serving work they describe.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + value,
                                       std::memory_order_relaxed)) {
    }
#endif
  }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Per-bucket (non-cumulative) counts; size bounds().size() + 1, the
  /// last entry being the +Inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds + Inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// --- snapshots and exposition ---------------------------------------------

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< per-bucket, last is +Inf
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of every registered metric, name-sorted per kind.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const CounterSnapshot* find_counter(
      std::string_view name) const;
  [[nodiscard]] const GaugeSnapshot* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name) const;

  /// Prometheus text exposition (names prefixed "muffin_", dots become
  /// underscores, histogram buckets cumulative with an +Inf bucket).
  [[nodiscard]] std::string to_prometheus() const;
  /// Compact JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{...}}.
  [[nodiscard]] std::string to_json() const;
};

class Registry {
 public:
  /// Look up or create the named metric. References stay valid for the
  /// process lifetime. Registering the same name with a different kind
  /// (or a histogram with different bounds) throws muffin::Error.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every registered metric (registration survives).
  void reset();

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry;

  [[nodiscard]] Entry& find_or_create(std::string_view name, Kind kind,
                                      std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  ///< stable addresses
};

/// The process-wide registry every layer reports through.
[[nodiscard]] Registry& registry();

/// Microsecond-scale latency buckets (1us .. 1s), shared by the timing
/// histograms so operator dashboards line up across layers.
[[nodiscard]] const std::vector<double>& latency_us_buckets();

/// Batch-size buckets (1 .. 512) for the batching histograms.
[[nodiscard]] const std::vector<double>& batch_size_buckets();

}  // namespace muffin::obs
