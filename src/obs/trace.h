// Sampled request tracing: Chrome trace_event JSON for the serving path.
//
// When tracing is enabled (the MUFFIN_TRACE environment variable names an
// output file, or a test calls Tracer::configure), a deterministic 1-in-N
// sampler picks requests at the edge (engine submit / RPC client submit /
// RPC server frame decode); every stage a sampled request passes through
// records a *complete* ("ph":"X") event with microsecond timestamps on
// one shared steady clock:
//
//   serve.queue        enqueue -> batch formation (per sampled request)
//   serve.batch        whole batch execution on a worker
//   serve.score_batch  body-model batch scoring
//   serve.fuse         consensus gate + head forward
//   serve.reply        promise delivery
//   serve.request      enqueue -> reply, end to end (per sampled request)
//   rpc.client.*       encode / write / roundtrip on the client side
//   rpc.server.*       decode / encode / write on the server side
//
// The collected events dump as {"traceEvents":[...]} — loadable directly
// in chrome://tracing or Perfetto — either explicitly (write()) or at
// process exit when MUFFIN_TRACE is set. The buffer is bounded; events
// past the cap are dropped and counted (dropped()), never reallocated
// unboundedly under load.
//
// Cost when disabled: sampling is one relaxed atomic load; spans compile
// to a bool and two branches. With -DMUFFIN_OBS_DISABLED tracing is
// compiled out entirely (enabled() is constant false).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace muffin::obs {

/// One Chrome trace_event "complete" event.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   ///< start, microseconds on the tracer clock
  double dur_us = 0.0;  ///< duration, microseconds
  std::uint64_t tid = 0;
  std::string args;  ///< pre-rendered JSON object body ("\"k\":1"), may be ""
};

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// The process-wide tracer. First access reads MUFFIN_TRACE (output
  /// path; empty/unset leaves tracing off) and MUFFIN_TRACE_SAMPLE
  /// (sample every request whose ordinal is divisible by round(1/rate);
  /// default rate 1.0 = every request).
  [[nodiscard]] static Tracer& instance();

  /// Programmatic setup (tests, CLI): enable with a 1-in-`every`
  /// sampler, or disable with enabled=false. Clears buffered events.
  void configure(bool enabled, std::uint64_t sample_every = 1,
                 std::string auto_flush_path = {});

  [[nodiscard]] bool enabled() const noexcept {
#if defined(MUFFIN_OBS_DISABLED)
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }

  /// Sampling decision for a new request at the serving edge. True for
  /// every sample_every-th call while enabled.
  [[nodiscard]] bool sample() noexcept {
    if (!enabled()) return false;
    return ordinal_.fetch_add(1, std::memory_order_relaxed) %
               sample_every_.load(std::memory_order_relaxed) ==
           0;
  }

  /// Microseconds of `tp` on the tracer clock (for events whose start
  /// was stamped before the span object existed, e.g. queue waits).
  [[nodiscard]] double to_us(Clock::time_point tp) const noexcept {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }
  [[nodiscard]] double now_us() const noexcept { return to_us(Clock::now()); }

  /// Record one complete event (thread-safe; dropped beyond the cap).
  void record(std::string name, double ts_us, double dur_us,
              std::string args = {});

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Copy of the buffered events (tests).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Write {"traceEvents":[...]} to `path`; returns false on I/O error.
  bool write(const std::string& path) const;
  /// Write to the configured auto-flush path, if any.
  void flush();

  /// Drop every buffered event (keeps enabled/sampling state).
  void clear();

 private:
  Tracer();
  ~Tracer() = default;

  static constexpr std::size_t kMaxEvents = 1u << 20;

  Clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> sample_every_{1};
  std::atomic<std::uint64_t> ordinal_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::string auto_flush_path_;
};

/// RAII span: stamps its start on construction and records a complete
/// event on destruction when `active`. `name` must outlive the span
/// (string literals at every call site).
class TraceSpan {
 public:
  TraceSpan(const char* name, bool active, std::string args = {})
      : name_(name), active_(active), args_(std::move(args)) {
    if (active_) start_us_ = Tracer::instance().now_us();
  }
  ~TraceSpan() {
    if (active_) {
      Tracer& tracer = Tracer::instance();
      tracer.record(name_, start_us_, tracer.now_us() - start_us_,
                    std::move(args_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  bool active_;
  std::string args_;
  double start_us_ = 0.0;
};

}  // namespace muffin::obs
