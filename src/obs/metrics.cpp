#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace muffin::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1) {
  MUFFIN_REQUIRE(
      std::is_sorted(bounds_.begin(), bounds_.end(),
                     [](double a, double b) { return a <= b; }),
      "histogram bounds must be strictly increasing");
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(counts_.size());
  for (const std::atomic<std::uint64_t>& c : counts_) {
    counts.push_back(c.load(std::memory_order_relaxed));
  }
  return counts;
}

void Histogram::reset() noexcept {
  for (std::atomic<std::uint64_t>& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- registry --------------------------------------------------------------

struct Registry::Entry {
  std::string name;
  Kind kind = Kind::Counter;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;  ///< only for Kind::Histogram
};

Registry::Entry& Registry::find_or_create(std::string_view name, Kind kind,
                                          std::vector<double> bounds) {
  MUFFIN_REQUIRE(!name.empty(), "metric name must be non-empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == name) {
      MUFFIN_REQUIRE(entry->kind == kind,
                     "metric '" + entry->name +
                         "' already registered with a different kind");
      if (kind == Kind::Histogram) {
        MUFFIN_REQUIRE(entry->histogram->bounds() == bounds,
                       "histogram '" + entry->name +
                           "' already registered with different buckets");
      }
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = kind;
  if (kind == Kind::Histogram) {
    entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name) {
  return find_or_create(name, Kind::Counter, {}).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(name, Kind::Gauge, {}).gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  return *find_or_create(name, Kind::Histogram, std::move(bounds)).histogram;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const std::unique_ptr<Entry>& entry : entries_) {
      switch (entry->kind) {
        case Kind::Counter:
          snap.counters.push_back({entry->name, entry->counter.value()});
          break;
        case Kind::Gauge:
          snap.gauges.push_back({entry->name, entry->gauge.value()});
          break;
        case Kind::Histogram: {
          HistogramSnapshot h;
          h.name = entry->name;
          h.bounds = entry->histogram->bounds();
          h.counts = entry->histogram->bucket_counts();
          h.count = entry->histogram->count();
          h.sum = entry->histogram->sum();
          snap.histograms.push_back(std::move(h));
          break;
        }
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    switch (entry->kind) {
      case Kind::Counter:
        entry->counter.reset();
        break;
      case Kind::Gauge:
        entry->gauge.reset();
        break;
      case Kind::Histogram:
        entry->histogram->reset();
        break;
    }
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

const std::vector<double>& latency_us_buckets() {
  static const std::vector<double> buckets = {
      1,    2,    5,     10,    20,    50,     100,    200,      500,
      1000, 2000, 5000,  10000, 20000, 50000,  100000, 200000,   500000,
      1000000};
  return buckets;
}

const std::vector<double>& batch_size_buckets() {
  static const std::vector<double> buckets = {1,  2,  4,   8,   16, 32,
                                              64, 128, 256, 512};
  return buckets;
}

// --- snapshot lookups ------------------------------------------------------

namespace {

template <typename T>
const T* find_by_name(const std::vector<T>& items, std::string_view name) {
  for (const T& item : items) {
    if (item.name == name) return &item;
  }
  return nullptr;
}

/// Prometheus metric name: "muffin_" prefix, [a-zA-Z0-9_] only.
std::string prom_name(const std::string& name) {
  std::string out = "muffin_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

/// Shortest-round-trip style double rendering without trailing noise.
std::string render_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name);
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const CounterSnapshot& c : counters) {
    const std::string name = prom_name(c.name);
    os << "# TYPE " << name << " counter\n"
       << name << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : gauges) {
    const std::string name = prom_name(g.name);
    os << "# TYPE " << name << " gauge\n"
       << name << " " << g.value << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string name = prom_name(h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << name << "_bucket{le=\"" << render_double(h.bounds[i]) << "\"} "
         << cumulative << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << name << "_sum " << render_double(h.sum) << "\n"
       << name << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? "," : "") << "\"" << counters[i].name
       << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << "\"" << gauges[i].name << "\":" << gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    os << (i ? "," : "") << "\"" << h.name << "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      os << (b ? "," : "") << render_double(h.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b ? "," : "") << h.counts[b];
    }
    os << "],\"count\":" << h.count << ",\"sum\":" << render_double(h.sum)
       << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace muffin::obs
