#include "models/pool.h"

#include "common/error.h"
#include "models/profiles.h"

namespace muffin::models {

void ModelPool::add(ModelPtr model) {
  MUFFIN_REQUIRE(model != nullptr, "cannot add a null model");
  if (!models_.empty()) {
    MUFFIN_REQUIRE(model->num_classes() == models_.front()->num_classes(),
                   "all pool models must share a class count");
  }
  for (const ModelPtr& existing : models_) {
    MUFFIN_REQUIRE(existing->name() != model->name(),
                   "pool already contains a model named '" + model->name() +
                       "'");
  }
  models_.push_back(std::move(model));
}

const Model& ModelPool::at(std::size_t index) const {
  MUFFIN_REQUIRE(index < models_.size(), "model index out of range");
  return *models_[index];
}

ModelPtr ModelPool::share(std::size_t index) const {
  MUFFIN_REQUIRE(index < models_.size(), "model index out of range");
  return models_[index];
}

const Model& ModelPool::by_name(const std::string& name) const {
  return at(index_of(name));
}

std::size_t ModelPool::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (models_[i]->name() == name) return i;
  }
  throw Error("pool has no model named '" + name + "'");
}

std::vector<std::string> ModelPool::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const ModelPtr& model : models_) out.push_back(model->name());
  return out;
}

ModelPool calibrated_isic_pool(const data::Dataset& dataset,
                               CalibrationConfig config) {
  ModelPool pool;
  for (const ArchitectureProfile& profile : isic2019_profiles()) {
    pool.add(std::make_shared<CalibratedModel>(profile, dataset, config));
  }
  return pool;
}

ModelPool calibrated_fitzpatrick_pool(const data::Dataset& dataset,
                                      CalibrationConfig config) {
  ModelPool pool;
  for (const ArchitectureProfile& profile : fitzpatrick17k_profiles()) {
    pool.add(std::make_shared<CalibratedModel>(profile, dataset, config));
  }
  return pool;
}

}  // namespace muffin::models
