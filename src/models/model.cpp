#include "models/model.h"

#include <algorithm>

#include "common/error.h"
#include "tensor/ops.h"

namespace muffin::models {

tensor::Matrix Model::score_batch(
    std::span<const data::Record> records) const {
  tensor::Matrix out(records.size(), num_classes());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const tensor::Vector s = scores(records[i]);
    MUFFIN_REQUIRE(s.size() == num_classes(),
                   "model returned a malformed score vector");
    std::copy(s.begin(), s.end(), out.row(i).begin());
  }
  return out;
}

std::size_t Model::predict(const data::Record& record) const {
  return tensor::argmax(scores(record));
}

std::vector<std::size_t> Model::predict_all(
    const data::Dataset& dataset) const {
  const tensor::Matrix scores = score_batch(dataset.records());
  std::vector<std::size_t> predictions(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    predictions[i] = tensor::argmax(scores.row(i));
  }
  return predictions;
}

}  // namespace muffin::models
