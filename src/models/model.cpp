#include "models/model.h"

#include "tensor/ops.h"

namespace muffin::models {

std::size_t Model::predict(const data::Record& record) const {
  return tensor::argmax(scores(record));
}

std::vector<std::size_t> Model::predict_all(
    const data::Dataset& dataset) const {
  std::vector<std::size_t> predictions(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    predictions[i] = predict(dataset.record(i));
  }
  return predictions;
}

}  // namespace muffin::models
