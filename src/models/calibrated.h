// Calibrated off-the-shelf model simulation.
//
// Stands in for a CNN trained on the real image dataset (DESIGN.md §1).
// The model's behaviour is specified by an ArchitectureProfile (overall
// accuracy + per-attribute unfairness targets) and realized against a
// concrete dataset in three steps:
//
// 1. **Offset derivation.** For each attribute, signed per-group accuracy
//    offsets are derived: unprivileged groups get negative offsets,
//    privileged positive, magnitudes ∝ 1/sqrt(group size) (rare groups
//    deviate most, as in the paper where 2%-mass sites show 45-point
//    accuracy gaps), subject to Σ_g |d_g| = U_target and weighted-mean
//    zero (overall accuracy preserved).
// 2. **Fixed-point calibration.** Because attributes co-occur
//    non-independently, realized group accuracies drift from the analytic
//    targets; a few damped fixed-point iterations rescale the offsets per
//    attribute and re-center the base accuracy against the expected
//    per-sample correctness probabilities on the calibration dataset.
// 3. **Copula sampling.** Sample correctness: model m is correct on record
//    i iff Φ(√ρ·z_i + √(1−ρ)·ε_im) < p_i, where z_i is the record's shared
//    difficulty factor and ε_im is idiosyncratic per (model, record). This
//    makes errors correlate across models with strength ρ, reproducing the
//    00/01/10/11 composition of Fig. 3. Score vectors are
//    confidence-calibrated: correct predictions are sharp, wrong ones flat
//    with the true class usually ranked second — the signal the muffin
//    head learns to exploit.
//
// Everything is a pure function of (profile, dataset, record.uid), so
// scores() is deterministic and the model needs no mutable state.
#pragma once

#include "common/rng.h"
#include "data/dataset.h"
#include "models/model.h"
#include "models/profiles.h"

namespace muffin::models {

struct CalibrationConfig {
  /// Copula correlation between model latents (DESIGN.md decision #1).
  double copula_rho = 0.72;
  /// Extra correlation between models of the same architecture family
  /// (ResNet-18/34/50 err together more than ResNet vs DenseNet). Total
  /// within-family correlation is copula_rho + family_rho; it bounds the
  /// marginal benefit of stacking same-family models into the body
  /// (Fig. 9b's diminishing returns).
  double family_rho = 0.12;
  /// Fixed-point iterations of step 2.
  std::size_t calibration_rounds = 4;
  /// Per-sample correctness probability clamp.
  double min_probability = 0.02;
  double max_probability = 0.995;
  /// Score-vector shape (step 3).
  double correct_margin = 1.05;       ///< peak logit when correct
  double correct_margin_slope = 0.9;  ///< extra margin per unit of slack
  double wrong_margin = 1.9;          ///< peak logit when wrong
  double runner_up_gap = 0.45;        ///< runner-up logit gap below the peak
  double logit_noise = 0.55;          ///< iid noise on all logits
  /// When the model is wrong, probability that the *true* class sits in the
  /// runner-up slot (otherwise a random decoy class does). Real CNNs rank
  /// the true class high but not reliably second; this bounds how much a
  /// fused head can recover from "both models wrong" records.
  double runner_up_rate = 0.40;
  /// Confidence miscalibration (DESIGN.md decision #2): real CNNs are not
  /// perfectly calibrated, so a fused head can only recover part of the
  /// disagreement set. With probability `overconfident_rate` a wrong
  /// prediction is emitted with a correct-like (sharp) margin; with
  /// probability `hesitant_rate` a correct prediction is emitted with a
  /// wrong-like (flat) margin.
  double overconfident_rate = 0.38;
  double hesitant_rate = 0.28;
};

/// A simulated, frozen, pretrained classifier.
class CalibratedModel final : public Model {
 public:
  /// Calibrates the profile against `dataset` (typically the full dataset;
  /// splits of it share records and therefore behave consistently).
  CalibratedModel(ArchitectureProfile profile, const data::Dataset& dataset,
                  CalibrationConfig config = {});

  [[nodiscard]] const std::string& name() const override {
    return profile_.name;
  }
  [[nodiscard]] std::size_t num_classes() const override {
    return num_classes_;
  }
  [[nodiscard]] std::size_t parameter_count() const override {
    return profile_.parameter_count;
  }
  /// Routes through the same planar batch kernel as score_batch() on a
  /// single-row span, so the two are bit-identical by construction.
  [[nodiscard]] tensor::Vector scores(
      const data::Record& record) const override;
  /// Whole-batch planar kernel: per-record substream seeds are derived in
  /// one scalar prologue, all normal draws fill contiguous per-stream
  /// arrays through the SIMD backend (tensor/ops.h normal_planar_into),
  /// the latent/margin statistics run as column sweeps, and the final
  /// softmax runs class-major over the whole output matrix
  /// (softmax_planar_into). Rows are split over the shared worker pool;
  /// every row is a pure function of its record and the frozen calibration
  /// state, so any partition — and the single-row scores() call — is
  /// bit-identical to one serial whole-batch call.
  [[nodiscard]] tensor::Matrix score_batch(
      std::span<const data::Record> records) const override;

  /// Whether the simulated model classifies `record` correctly (the copula
  /// draw behind scores()).
  [[nodiscard]] bool is_correct(const data::Record& record) const;
  /// Expected correctness probability p_i for a record (post-calibration).
  [[nodiscard]] double correctness_probability(
      const data::Record& record) const;

  [[nodiscard]] const ArchitectureProfile& profile() const { return profile_; }
  [[nodiscard]] const CalibrationConfig& config() const { return config_; }
  /// Calibrated per-group accuracy offsets for one attribute.
  [[nodiscard]] const std::vector<double>& group_offsets(
      std::size_t attribute) const;
  [[nodiscard]] double base_accuracy() const { return base_accuracy_; }

 private:
  /// Per-call scratch of the planar batch kernel: splitmix64 stream
  /// states, per-record statistics (struct-of-arrays) and the class-major
  /// logit planes, carved out of four flat arenas (a fresh scratch costs
  /// four allocations, not one per array). Owned by the caller so a
  /// row-partitioned score_batch gives each block a private instance —
  /// partition-independent and free of shared mutable state under the
  /// worker pool.
  struct BatchScratch {
    /// [eps states n | fam states n | logit states n | confusion n |
    ///  calibration n | runner n]; eps and fam are adjacent on purpose so
    /// one planar sweep fills both draw columns.
    std::vector<std::uint64_t> words;
    /// [eps draws n | fam draws n | probability n | difficulty n |
    ///  slack n | margin n | max background n | planes classes * n]
    std::vector<double> reals;
    /// [label n | predicted n]
    std::vector<std::size_t> indices;
    std::vector<unsigned char> correct;
  };

  void derive_offsets(const data::Dataset& dataset);
  void fixed_point_calibrate(const data::Dataset& dataset);
  /// The batch kernel: rows for `records` written row-major at `out` with
  /// leading dimension `ldo` (>= num_classes_). See score_batch() for the
  /// pass structure and the partition-invariance argument.
  void score_rows(std::span<const data::Record> records, BatchScratch& scratch,
                  double* out, std::size_t ldo) const;
  /// Latent Φ(√ρ z + √ρ_fam f + √(1−ρ−ρ_fam) ε) for a record; uniform in
  /// [0,1] marginally. Scalar CounterRng twin of the kernel's pass B/C —
  /// same streams, same draws, same expression, bit for bit.
  [[nodiscard]] double latent_quantile(const data::Record& record) const;

  ArchitectureProfile profile_;
  CalibrationConfig config_;
  std::size_t num_classes_ = 0;
  std::vector<data::AttributeSchema> schema_;
  std::vector<double> class_priors_;
  /// Per-label total confusion mass Σ_{c != label} (prior_c + 1e-6),
  /// precomputed so the wrong-prediction draw needs no per-record weight
  /// vector (and no per-record heap allocation).
  std::vector<double> confusion_total_;
  /// offsets_[attribute][group] — signed accuracy deltas.
  std::vector<std::vector<double>> offsets_;
  double base_accuracy_ = 0.0;
  std::uint64_t model_seed_ = 0;
  /// Cached fnv1a64(profile_.family): the family copula stream's master
  /// seed, shared by same-family models (hashed once, not per record).
  std::uint64_t family_seed_ = 0;
  /// Hoisted substream purpose prefixes (stream_purpose_prefix), hashed
  /// once per model instead of once per record per stream.
  std::uint64_t eps_prefix_ = 0;
  std::uint64_t fam_prefix_ = 0;
  std::uint64_t confusion_prefix_ = 0;
  std::uint64_t logits_prefix_ = 0;
  std::uint64_t calibration_prefix_ = 0;
  std::uint64_t runner_prefix_ = 0;
  /// Hoisted copula mixing weights: √ρ, √ρ_fam, √(1−ρ−ρ_fam).
  double latent_shared_w_ = 0.0;
  double latent_family_w_ = 0.0;
  double latent_eps_w_ = 0.0;
};

}  // namespace muffin::models
