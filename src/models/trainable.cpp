#include "models/trainable.h"

#include <algorithm>

#include "common/error.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace muffin::models {

namespace {
nn::MlpSpec classifier_spec(const data::Dataset& dataset,
                            const TrainableConfig& config) {
  MUFFIN_REQUIRE(dataset.size() > 0, "dataset must be non-empty");
  nn::MlpSpec spec;
  spec.input_dim = dataset.record(0).features.size();
  MUFFIN_REQUIRE(spec.input_dim > 0, "records must carry features");
  spec.hidden_dims = config.hidden_dims;
  spec.output_dim = dataset.num_classes();
  spec.hidden_activation = config.activation;
  spec.output_activation = nn::Activation::Identity;
  return spec;
}
}  // namespace

nn::TrainingSet to_training_set(const data::Dataset& dataset,
                                std::span<const double> sample_weights) {
  MUFFIN_REQUIRE(dataset.size() > 0, "dataset must be non-empty");
  MUFFIN_REQUIRE(
      sample_weights.empty() || sample_weights.size() == dataset.size(),
      "sample weights must match dataset size");
  const std::size_t feature_dim = dataset.record(0).features.size();
  nn::TrainingSet set;
  set.num_classes = dataset.num_classes();
  set.features.resize(dataset.size(), feature_dim);
  set.labels.resize(dataset.size());
  set.weights.assign(dataset.size(), 1.0);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const data::Record& record = dataset.record(i);
    MUFFIN_REQUIRE(record.features.size() == feature_dim,
                   "all records must share a feature width");
    for (std::size_t d = 0; d < feature_dim; ++d) {
      set.features(i, d) = record.features[d];
    }
    set.labels[i] = record.label;
    if (!sample_weights.empty()) set.weights[i] = sample_weights[i];
  }
  return set;
}

TrainableClassifier::TrainableClassifier(std::string name,
                                         const data::Dataset& dataset,
                                         TrainableConfig config)
    : name_(std::move(name)),
      num_classes_(dataset.num_classes()),
      feature_dim_(dataset.record(0).features.size()),
      config_(config),
      mlp_(classifier_spec(dataset, config)) {
  SplitRng rng(config_.seed);
  SplitRng init_rng = rng.fork("init:" + name_);
  mlp_.init(init_rng);
}

double TrainableClassifier::fit(const data::Dataset& train,
                                std::span<const double> sample_weights) {
  const nn::TrainingSet set = to_training_set(train, sample_weights);
  MUFFIN_REQUIRE(set.features.cols() == feature_dim_,
                 "training features must match classifier width");
  nn::WeightedMse loss;
  nn::Adam optimizer(nn::AdamConfig{.learning_rate = config_.learning_rate});
  nn::TrainerConfig trainer;
  trainer.epochs = config_.epochs;
  trainer.batch_size = config_.batch_size;
  SplitRng rng = SplitRng(config_.seed).fork("fit:" + name_);
  const double final_loss =
      nn::train(mlp_, set, loss, optimizer, trainer, rng);
  trained_ = true;
  return final_loss;
}

tensor::Vector TrainableClassifier::scores(const data::Record& record) const {
  MUFFIN_REQUIRE(record.features.size() == feature_dim_,
                 "record feature width mismatch");
  return tensor::softmax(mlp_.forward_inference(record.features));
}

tensor::Matrix TrainableClassifier::score_batch(
    std::span<const data::Record> records) const {
  tensor::Matrix features(records.size(), feature_dim_);
  for (std::size_t i = 0; i < records.size(); ++i) {
    MUFFIN_REQUIRE(records[i].features.size() == feature_dim_,
                   "record feature width mismatch");
    std::copy(records[i].features.begin(), records[i].features.end(),
              features.row(i).begin());
  }
  const tensor::Matrix logits = mlp_.forward_batch_inference(features);
  tensor::Matrix out(records.size(), num_classes_);
  for (std::size_t i = 0; i < records.size(); ++i) {
    tensor::softmax_into(logits.row(i), out.row(i));
  }
  return out;
}

}  // namespace muffin::models
