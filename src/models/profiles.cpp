#include "models/profiles.h"

#include "common/error.h"

namespace muffin::models {

double ArchitectureProfile::unfairness_for(const std::string& attribute) const {
  const auto it = unfairness.find(attribute);
  MUFFIN_REQUIRE(it != unfairness.end(),
                 "profile '" + name + "' has no unfairness target for '" +
                     attribute + "'");
  return it->second;
}

double ArchitectureProfile::floor_for(const std::string& attribute) const {
  const auto it = bottleneck_floor.find(attribute);
  if (it != bottleneck_floor.end()) return it->second;
  return 0.6 * unfairness_for(attribute);
}

const std::vector<ArchitectureProfile>& isic2019_profiles() {
  // Accuracy and age/site unfairness for the four Table I architectures are
  // the paper's vanilla numbers; the remaining six are read off Fig. 1(c)
  // and Fig. 5. Gender unfairness is small for every model (Fig. 1a-b).
  // Bottleneck floors encode Observation 2: DenseNet121 cannot improve site
  // below ~0.35 and ResNet-18 cannot improve age below ~0.24 (Table I).
  static const std::vector<ArchitectureProfile> kProfiles = {
      {"ShuffleNet_V2_X0_5", "ShuffleNet", 351304, 0.7550,
       {{"age", 0.42}, {"site", 0.50}, {"gender", 0.11}},
       {}},
      {"ShuffleNet_V2_X1_0", "ShuffleNet", 1261804, 0.7721,
       {{"age", 0.36}, {"site", 0.45}, {"gender", 0.08}},
       {{"age", 0.27}, {"site", 0.42}}},
      {"MobileNet_V3_Small", "MobileNet", 1526056, 0.7619,
       {{"age", 0.38}, {"site", 0.54}, {"gender", 0.09}},
       {{"age", 0.29}, {"site", 0.50}}},
      {"MobileNet_V2", "MobileNet", 2234120, 0.7900,
       {{"age", 0.36}, {"site", 0.47}, {"gender", 0.07}},
       {}},
      {"MobileNet_V3_Large", "MobileNet", 4212280, 0.8050,
       {{"age", 0.33}, {"site", 0.46}, {"gender", 0.06}},
       {}},
      {"DenseNet121", "DenseNet", 6962056, 0.8183,
       {{"age", 0.31}, {"site", 0.36}, {"gender", 0.05}},
       {{"age", 0.25}, {"site", 0.35}}},
      {"DenseNet201", "DenseNet", 18108296, 0.8190,
       {{"age", 0.30}, {"site", 0.40}, {"gender", 0.06}},
       {}},
      {"ResNet-18", "ResNet", 11180616, 0.8128,
       {{"age", 0.26}, {"site", 0.43}, {"gender", 0.05}},
       {{"age", 0.24}, {"site", 0.33}}},
      {"ResNet-34", "ResNet", 21288776, 0.8145,
       {{"age", 0.29}, {"site", 0.46}, {"gender", 0.06}},
       {}},
      {"ResNet-50", "ResNet", 23524424, 0.8120,
       {{"age", 0.34}, {"site", 0.44}, {"gender", 0.07}},
       {}},
  };
  return kProfiles;
}

const std::vector<ArchitectureProfile>& fitzpatrick17k_profiles() {
  // Fig. 7: existing models sit at accuracy ~61.5-62.5%, skin-tone
  // unfairness 0.25-0.35 and type unfairness 1.12-1.24.
  static const std::vector<ArchitectureProfile> kProfiles = {
      {"ResNet-18", "ResNet", 11185224, 0.6230,
       {{"skin_tone", 0.27}, {"type", 1.16}},
       {}},
      {"ResNet-34", "ResNet", 21293384, 0.6205,
       {{"skin_tone", 0.30}, {"type", 1.20}},
       {}},
      {"ResNet-50", "ResNet", 23542856, 0.6190,
       {{"skin_tone", 0.33}, {"type", 1.14}},
       {}},
      {"ShuffleNet_V2_X0_5", "ShuffleNet", 352329, 0.6130,
       {{"skin_tone", 0.34}, {"type", 1.23}},
       {}},
      {"ShuffleNet_V2_X1_0", "ShuffleNet", 1262829, 0.6170,
       {{"skin_tone", 0.31}, {"type", 1.21}},
       {}},
      {"MobileNet_V3_Small", "MobileNet", 1527081, 0.6145,
       {{"skin_tone", 0.35}, {"type", 1.24}},
       {}},
      {"MobileNet_V3_Large", "MobileNet", 4213305, 0.6220,
       {{"skin_tone", 0.29}, {"type", 1.18}},
       {}},
  };
  return kProfiles;
}

const ArchitectureProfile& profile_by_name(
    const std::vector<ArchitectureProfile>& profiles,
    const std::string& name) {
  for (const ArchitectureProfile& profile : profiles) {
    if (profile.name == name) return profile;
  }
  throw Error("no architecture profile named '" + name + "'");
}

}  // namespace muffin::models
