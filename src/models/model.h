// Abstract classification model interface.
//
// Everything downstream of the model pool (fairness metrics, baselines,
// muffin head, controller) consumes this interface only, so calibrated
// simulation models and genuinely trained classifiers are interchangeable.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace muffin::models {

/// A classifier over dataset records.
class Model {
 public:
  virtual ~Model() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual std::size_t num_classes() const = 0;
  /// Number of trainable parameters in the underlying network ("body"
  /// parameters in muffin terms; Table I / Fig. 9b report these).
  [[nodiscard]] virtual std::size_t parameter_count() const = 0;

  /// Class-score vector (non-negative, sums to 1) for one record.
  /// Deterministic: the same record always yields the same scores.
  ///
  /// Thread safety: const member functions must be safe to call
  /// concurrently from multiple threads on the same instance (the serving
  /// engine and the parallel search both rely on this). Implementations
  /// with mutable internal state — e.g. forward caches — must synchronize
  /// it themselves; purely functional models need no locking. Since the
  /// batch-first refactor every in-tree model is purely functional on the
  /// inference path (nn::Mlp::forward_inference is const and cache-free),
  /// so no in-tree model locks; the relaxed contract stands for external
  /// implementations that still carry mutable caches.
  [[nodiscard]] virtual tensor::Vector scores(
      const data::Record& record) const = 0;

  /// Batch scoring: row i of the result is the score vector of records[i].
  /// Matrix-in/Matrix-out hot path — implementations vectorize it (batched
  /// GEMM for network-backed models, scratch reuse for calibrated ones) but
  /// must stay bit-identical, row for row, to per-record scores() calls.
  /// The default loops scores() per record.
  [[nodiscard]] virtual tensor::Matrix score_batch(
      std::span<const data::Record> records) const;

  /// Argmax class of scores(record).
  [[nodiscard]] std::size_t predict(const data::Record& record) const;

  /// Convenience: predictions for every record of a dataset (one
  /// score_batch call over the record span).
  [[nodiscard]] std::vector<std::size_t> predict_all(
      const data::Dataset& dataset) const;
};

using ModelPtr = std::shared_ptr<const Model>;

}  // namespace muffin::models
