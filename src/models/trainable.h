// Genuinely trained classifier substrate.
//
// A small MLP trained on the synthetic record features. Used to validate
// that the phenomena the calibrated pool encodes (unfairness on rare
// groups, the Fig. 2 seesaw under re-weighting) also emerge from *real*
// training on this data distribution, and as the retraining vehicle for
// the Method-D / Method-L baselines.
#pragma once

#include <optional>

#include "models/model.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace muffin::models {

struct TrainableConfig {
  std::vector<std::size_t> hidden_dims = {32, 24};
  nn::Activation activation = nn::Activation::Relu;
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  double learning_rate = 2e-3;
  std::uint64_t seed = 7;
};

/// A trainable MLP classifier over record feature vectors.
class TrainableClassifier final : public Model {
 public:
  /// Builds an untrained classifier shaped for `dataset` (feature width and
  /// class count are read from it).
  TrainableClassifier(std::string name, const data::Dataset& dataset,
                      TrainableConfig config = {});

  /// Train on `train` with optional per-sample weights (size must match
  /// `train.size()` when provided). Returns the final mean epoch loss.
  double fit(const data::Dataset& train,
             std::span<const double> sample_weights = {});

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t num_classes() const override {
    return num_classes_;
  }
  [[nodiscard]] std::size_t parameter_count() const override {
    return mlp_.parameter_count();
  }
  [[nodiscard]] tensor::Vector scores(
      const data::Record& record) const override;
  /// Batched scoring: one feature-gather, one MLP GEMM forward, row-wise
  /// softmax. Bit-identical to per-record scores().
  [[nodiscard]] tensor::Matrix score_batch(
      std::span<const data::Record> records) const override;

  [[nodiscard]] bool is_trained() const { return trained_; }
  [[nodiscard]] const TrainableConfig& config() const { return config_; }

 private:
  std::string name_;
  std::size_t num_classes_;
  std::size_t feature_dim_;
  TrainableConfig config_;
  // Inference goes through the const, cache-free Mlp::forward_inference /
  // forward_batch_inference, so scores() needs no mutable state or locking.
  nn::Mlp mlp_;
  bool trained_ = false;
};

/// Build a nn::TrainingSet view of a dataset's features/labels. Weights
/// default to 1.
[[nodiscard]] nn::TrainingSet to_training_set(
    const data::Dataset& dataset,
    std::span<const double> sample_weights = {});

}  // namespace muffin::models
