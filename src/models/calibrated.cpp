#include "models/calibrated.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.h"
#include "common/parallel_for.h"
#include "common/stats.h"
#include "tensor/ops.h"

namespace muffin::models {

namespace {

/// Signed per-group offsets for one attribute: negative on the unprivileged
/// side, positive on the privileged side, magnitudes ∝ 1/sqrt(group size),
/// Σ|d_g| = target and Σ n_g d_g = 0.
std::vector<double> solve_offsets(const std::vector<std::size_t>& sizes,
                                  std::vector<bool> low_side, double target) {
  const std::size_t groups = sizes.size();
  std::vector<double> offsets(groups, 0.0);
  if (target <= 0.0 || groups < 2) return offsets;

  // Fallback when the scenario marks no unprivileged group (e.g. gender):
  // the below-median-size groups take the low side — in the real datasets
  // rarer groups fare worse.
  if (std::none_of(low_side.begin(), low_side.end(),
                   [](bool b) { return b; })) {
    std::vector<std::size_t> sorted = sizes;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t median = sorted[sorted.size() / 2];
    for (std::size_t g = 0; g < groups; ++g) {
      low_side[g] = sizes[g] < median || (sizes[g] == median && g + 1 == groups);
    }
    if (std::none_of(low_side.begin(), low_side.end(),
                     [](bool b) { return b; })) {
      low_side[0] = true;  // degenerate: all sizes equal
    }
  }
  // Ensure the high side is non-empty too.
  if (std::all_of(low_side.begin(), low_side.end(),
                  [](bool b) { return b; })) {
    low_side[0] = false;
  }

  std::vector<double> share(groups, 0.0);
  double low_total = 0.0;
  double high_total = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    share[g] = 1.0 / std::sqrt(static_cast<double>(std::max<std::size_t>(
                   sizes[g], 1)));
    (low_side[g] ? low_total : high_total) += share[g];
  }
  double weighted_low = 0.0;
  double weighted_high = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const double normalized =
        share[g] / (low_side[g] ? low_total : high_total);
    share[g] = normalized;
    const double mass = static_cast<double>(sizes[g]) * normalized;
    (low_side[g] ? weighted_low : weighted_high) += mass;
  }
  MUFFIN_REQUIRE(weighted_low > 0.0 && weighted_high > 0.0,
                 "offset derivation needs samples on both sides");
  const double c_low = target / (1.0 + weighted_low / weighted_high);
  const double c_high = target - c_low;
  for (std::size_t g = 0; g < groups; ++g) {
    offsets[g] = low_side[g] ? -c_low * share[g] : c_high * share[g];
  }
  return offsets;
}

}  // namespace

CalibratedModel::CalibratedModel(ArchitectureProfile profile,
                                 const data::Dataset& dataset,
                                 CalibrationConfig config)
    : profile_(std::move(profile)),
      config_(config),
      num_classes_(dataset.num_classes()),
      schema_(dataset.schema()),
      base_accuracy_(0.0),
      model_seed_(fnv1a64(profile_.calibration_alias.empty()
                              ? profile_.name
                              : profile_.calibration_alias)),
      family_seed_(fnv1a64(profile_.family)) {
  MUFFIN_REQUIRE(dataset.size() > 0,
                 "calibration requires a non-empty dataset");
  MUFFIN_REQUIRE(profile_.accuracy > 0.0 && profile_.accuracy < 1.0,
                 "profile accuracy must be a fraction in (0, 1)");
  MUFFIN_REQUIRE(config_.copula_rho >= 0.0 && config_.copula_rho < 1.0,
                 "copula rho must be in [0, 1)");
  MUFFIN_REQUIRE(config_.family_rho >= 0.0 &&
                     config_.copula_rho + config_.family_rho < 1.0,
                 "family rho must be non-negative with rho sum below 1");
  base_accuracy_ = profile_.accuracy;

  const std::vector<std::size_t> sizes = dataset.class_sizes();
  class_priors_.resize(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    class_priors_[c] = static_cast<double>(sizes[c]) /
                       static_cast<double>(dataset.size());
  }

  derive_offsets(dataset);
  fixed_point_calibrate(dataset);
}

void CalibratedModel::derive_offsets(const data::Dataset& dataset) {
  offsets_.assign(schema_.size(), {});
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    const auto it = profile_.unfairness.find(schema_[a].name);
    const double target = it == profile_.unfairness.end() ? 0.0 : it->second;
    std::vector<bool> low_side(schema_[a].group_count(), false);
    for (std::size_t g = 0; g < schema_[a].group_count(); ++g) {
      low_side[g] = dataset.is_unprivileged(a, g);
    }
    offsets_[a] = solve_offsets(dataset.group_sizes(a), low_side, target);
  }
}

void CalibratedModel::fixed_point_calibrate(const data::Dataset& dataset) {
  for (std::size_t round = 0; round < config_.calibration_rounds; ++round) {
    // Expected (not sampled) accuracy per group and overall.
    double overall = 0.0;
    std::vector<std::vector<double>> group_sum(schema_.size());
    std::vector<std::vector<std::size_t>> group_n(schema_.size());
    for (std::size_t a = 0; a < schema_.size(); ++a) {
      group_sum[a].assign(schema_[a].group_count(), 0.0);
      group_n[a].assign(schema_[a].group_count(), 0);
    }
    for (const data::Record& record : dataset.records()) {
      const double p = correctness_probability(record);
      overall += p;
      for (std::size_t a = 0; a < schema_.size(); ++a) {
        group_sum[a][record.groups[a]] += p;
        ++group_n[a][record.groups[a]];
      }
    }
    overall /= static_cast<double>(dataset.size());

    // Re-center the base accuracy.
    base_accuracy_ += 0.9 * (profile_.accuracy - overall);

    // Rescale each attribute's offsets toward its unfairness target.
    for (std::size_t a = 0; a < schema_.size(); ++a) {
      const auto it = profile_.unfairness.find(schema_[a].name);
      if (it == profile_.unfairness.end() || it->second <= 0.0) continue;
      double realized = 0.0;
      for (std::size_t g = 0; g < schema_[a].group_count(); ++g) {
        if (group_n[a][g] == 0) continue;
        const double acc_g =
            group_sum[a][g] / static_cast<double>(group_n[a][g]);
        realized += std::abs(acc_g - overall);
      }
      if (realized <= 1e-9) continue;
      const double scale = clamp(it->second / realized, 0.5, 2.0);
      const double damped = 1.0 + 0.8 * (scale - 1.0);
      for (double& d : offsets_[a]) d *= damped;
    }
  }
}

double CalibratedModel::correctness_probability(
    const data::Record& record) const {
  MUFFIN_REQUIRE(record.groups.size() == schema_.size(),
                 "record schema mismatch");
  double p = base_accuracy_;
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    p += offsets_[a][record.groups[a]];
  }
  return clamp(p, config_.min_probability, config_.max_probability);
}

namespace {

/// fnv1a64(purpose + ":" + std::to_string(uid)) without building the
/// string: hashed incrementally with the uid rendered into a stack buffer.
std::uint64_t stream_name_hash(std::string_view purpose, std::uint64_t uid) {
  std::uint64_t hash = fnv1a64(purpose);
  hash = fnv1a64_continue(hash, ":");
  char digits[20];
  char* end = digits + sizeof(digits);
  char* cursor = end;
  do {
    *--cursor = static_cast<char>('0' + uid % 10);
    uid /= 10;
  } while (uid != 0);
  return fnv1a64_continue(hash,
                          std::string_view(cursor, end - cursor));
}

}  // namespace

SplitRng CalibratedModel::record_rng(const data::Record& record,
                                     std::string_view purpose) const {
  // Bit-identical to SplitRng(model_seed_).fork(purpose + ":" + uid), but
  // derives the substream seed directly — scores() calls this several
  // times per record, and seeding the intermediate mt19937_64 engine was
  // the hottest instruction path of the whole scoring pipeline.
  return SplitRng(fork_seed(model_seed_, stream_name_hash(purpose, record.uid)));
}

double CalibratedModel::latent_quantile(const data::Record& record) const {
  const double eps = record_rng(record, "eps").normal();
  // Family factor: derived from (family, record), so same-family models
  // share it while cross-family models do not. family_seed_ caches
  // fnv1a64(profile_.family); the stream matches
  // SplitRng(family_seed_).fork("fam:" + uid) bit for bit.
  const double family_factor =
      SplitRng(fork_seed(family_seed_, stream_name_hash("fam", record.uid)))
          .normal();
  const double latent =
      std::sqrt(config_.copula_rho) * record.difficulty +
      std::sqrt(config_.family_rho) * family_factor +
      std::sqrt(1.0 - config_.copula_rho - config_.family_rho) * eps;
  return normal_cdf(latent);
}

bool CalibratedModel::is_correct(const data::Record& record) const {
  return latent_quantile(record) < correctness_probability(record);
}

const std::vector<double>& CalibratedModel::group_offsets(
    std::size_t attribute) const {
  MUFFIN_REQUIRE(attribute < offsets_.size(), "attribute index out of range");
  return offsets_[attribute];
}

tensor::Vector CalibratedModel::scores(const data::Record& record) const {
  tensor::Vector out(num_classes_);
  tensor::Vector logits_scratch;
  scores_into(record, logits_scratch, out);
  return out;
}

tensor::Matrix CalibratedModel::score_batch(
    std::span<const data::Record> records) const {
  tensor::Matrix out(records.size(), num_classes_);
  // Row-split over the shared worker pool: each record's scores derive
  // only from the record and the frozen calibration state, so any
  // partition is bit-identical to the serial loop. The simulation is
  // RNG-bound per record (several named substreams each), which is
  // exactly the work a row split scales — scratch lives per block.
  parallel_for(records.size(), /*grain=*/64,
               [&](std::size_t begin, std::size_t end) {
                 tensor::Vector logits_scratch;
                 for (std::size_t i = begin; i < end; ++i) {
                   scores_into(records[i], logits_scratch, out.row(i));
                 }
               });
  return out;
}

void CalibratedModel::scores_into(const data::Record& record,
                                  tensor::Vector& logits,
                                  std::span<double> out) const {
  MUFFIN_REQUIRE(record.label < num_classes_, "record label out of range");
  const double p = correctness_probability(record);
  const double quantile = latent_quantile(record);
  const bool correct = quantile < p;
  const double slack = p - quantile;  // >0 when correct, <0 when wrong

  // Choose the predicted class.
  std::size_t predicted = record.label;
  if (!correct) {
    SplitRng confusion = record_rng(record, "confusion");
    std::vector<double> weights(num_classes_, 0.0);
    double total = 0.0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      if (c == record.label) continue;
      weights[c] = class_priors_[c] + 1e-6;
      total += weights[c];
    }
    MUFFIN_REQUIRE(total > 0.0, "confusion weights must have mass");
    predicted = confusion.categorical(weights);
  }

  // Build logits: background noise, then the predicted class strictly on
  // top with a correctness-dependent margin; when wrong, the true class
  // trails the prediction by runner_up_gap (often ranked second).
  SplitRng noise = record_rng(record, "logits");
  logits.assign(num_classes_, 0.0);
  // Background = every class except the prediction (the true label's noise
  // must be included, or it could accidentally win the argmax and break the
  // calibrated correctness marginal).
  double max_background = 0.0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    logits[c] = noise.normal(0.0, config_.logit_noise);
    if (c != predicted) {
      max_background = std::max(max_background, logits[c]);
    }
  }

  // Confidence miscalibration: some wrong answers look sharp, some correct
  // answers look hesitant (bounds how much of the disagreement set a fused
  // head can possibly recover, like a real CNN ensemble).
  SplitRng calib = record_rng(record, "calibration");
  const bool miscalibrated = calib.bernoulli(
      correct ? config_.hesitant_rate : config_.overconfident_rate);
  const bool sharp_regime = correct != miscalibrated;

  double margin = 0.0;
  if (sharp_regime) {
    const double sharpness =
        correct ? clamp(slack, 0.0, 1.0) : clamp(-slack, 0.0, 1.0);
    margin = config_.correct_margin +
             config_.correct_margin_slope * sharpness;
  } else {
    // Flat regime: barely-decided samples leave the model visibly
    // uncertain — the margin shrinks and the score vector flattens.
    const double wobble = clamp(std::abs(slack) * 2.5, 0.0, 1.0);
    margin = config_.wrong_margin * (0.25 + 0.75 * wobble);
  }
  // Domain familiarity: real CNNs are less confident on groups they handle
  // poorly, independent of whether this particular answer is right. p
  // encodes the group structure, so this leaks group identity into the
  // score shape — which is what lets the fairness-weighted head training
  // (Algorithm 1) specialize on unprivileged patterns.
  margin *= 0.4 + 0.8 * p;
  logits[predicted] = max_background + margin;
  if (num_classes_ > 2) {
    // Runner-up slot: when wrong, the true class lands there only with
    // probability runner_up_rate — otherwise a random decoy class does.
    // When correct, a decoy always fills it (some class is always second).
    SplitRng runner = record_rng(record, "runner-up");
    std::size_t runner_class = record.label;
    if (correct || !runner.bernoulli(config_.runner_up_rate)) {
      do {
        runner_class = runner.index(num_classes_);
      } while (runner_class == predicted || runner_class == record.label);
      if (correct && runner.bernoulli(0.5)) {
        // Correct predictions may still rank the true class's own decoy
        // lower than background; skip the boost half the time.
        runner_class = predicted;
      }
    }
    if (runner_class != predicted) {
      logits[runner_class] = max_background + margin - config_.runner_up_gap;
    }
  } else if (!correct) {
    logits[record.label] = max_background + margin - config_.runner_up_gap;
  }
  tensor::softmax_into(logits, out);
}

}  // namespace muffin::models
