#include "models/calibrated.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.h"
#include "common/parallel_for.h"
#include "common/stats.h"
#include "tensor/ops.h"

namespace muffin::models {

namespace {

/// Signed per-group offsets for one attribute: negative on the unprivileged
/// side, positive on the privileged side, magnitudes ∝ 1/sqrt(group size),
/// Σ|d_g| = target and Σ n_g d_g = 0.
std::vector<double> solve_offsets(const std::vector<std::size_t>& sizes,
                                  std::vector<bool> low_side, double target) {
  const std::size_t groups = sizes.size();
  std::vector<double> offsets(groups, 0.0);
  if (target <= 0.0 || groups < 2) return offsets;

  // Fallback when the scenario marks no unprivileged group (e.g. gender):
  // the below-median-size groups take the low side — in the real datasets
  // rarer groups fare worse.
  if (std::none_of(low_side.begin(), low_side.end(),
                   [](bool b) { return b; })) {
    std::vector<std::size_t> sorted = sizes;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t median = sorted[sorted.size() / 2];
    for (std::size_t g = 0; g < groups; ++g) {
      low_side[g] = sizes[g] < median || (sizes[g] == median && g + 1 == groups);
    }
    if (std::none_of(low_side.begin(), low_side.end(),
                     [](bool b) { return b; })) {
      low_side[0] = true;  // degenerate: all sizes equal
    }
  }
  // Ensure the high side is non-empty too.
  if (std::all_of(low_side.begin(), low_side.end(),
                  [](bool b) { return b; })) {
    low_side[0] = false;
  }

  std::vector<double> share(groups, 0.0);
  double low_total = 0.0;
  double high_total = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    share[g] = 1.0 / std::sqrt(static_cast<double>(std::max<std::size_t>(
                   sizes[g], 1)));
    (low_side[g] ? low_total : high_total) += share[g];
  }
  double weighted_low = 0.0;
  double weighted_high = 0.0;
  for (std::size_t g = 0; g < groups; ++g) {
    const double normalized =
        share[g] / (low_side[g] ? low_total : high_total);
    share[g] = normalized;
    const double mass = static_cast<double>(sizes[g]) * normalized;
    (low_side[g] ? weighted_low : weighted_high) += mass;
  }
  MUFFIN_REQUIRE(weighted_low > 0.0 && weighted_high > 0.0,
                 "offset derivation needs samples on both sides");
  const double c_low = target / (1.0 + weighted_low / weighted_high);
  const double c_high = target - c_low;
  for (std::size_t g = 0; g < groups; ++g) {
    offsets[g] = low_side[g] ? -c_low * share[g] : c_high * share[g];
  }
  return offsets;
}

}  // namespace

CalibratedModel::CalibratedModel(ArchitectureProfile profile,
                                 const data::Dataset& dataset,
                                 CalibrationConfig config)
    : profile_(std::move(profile)),
      config_(config),
      num_classes_(dataset.num_classes()),
      schema_(dataset.schema()),
      base_accuracy_(0.0),
      model_seed_(fnv1a64(profile_.calibration_alias.empty()
                              ? profile_.name
                              : profile_.calibration_alias)),
      family_seed_(fnv1a64(profile_.family)) {
  MUFFIN_REQUIRE(dataset.size() > 0,
                 "calibration requires a non-empty dataset");
  MUFFIN_REQUIRE(profile_.accuracy > 0.0 && profile_.accuracy < 1.0,
                 "profile accuracy must be a fraction in (0, 1)");
  MUFFIN_REQUIRE(config_.copula_rho >= 0.0 && config_.copula_rho < 1.0,
                 "copula rho must be in [0, 1)");
  MUFFIN_REQUIRE(config_.family_rho >= 0.0 &&
                     config_.copula_rho + config_.family_rho < 1.0,
                 "family rho must be non-negative with rho sum below 1");
  base_accuracy_ = profile_.accuracy;

  const std::vector<std::size_t> sizes = dataset.class_sizes();
  class_priors_.resize(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    class_priors_[c] = static_cast<double>(sizes[c]) /
                       static_cast<double>(dataset.size());
  }
  // Per-label confusion mass: total weight of the wrong-prediction
  // categorical over c != label, accumulated in ascending class order (the
  // same order the sampling scan walks, so the draw lands in the bucket the
  // accumulated prefix defines).
  confusion_total_.assign(num_classes_, 0.0);
  for (std::size_t label = 0; label < num_classes_; ++label) {
    double total = 0.0;
    for (std::size_t c = 0; c < num_classes_; ++c) {
      if (c == label) continue;
      total += class_priors_[c] + 1e-6;
    }
    confusion_total_[label] = total;
  }

  eps_prefix_ = stream_purpose_prefix("eps");
  fam_prefix_ = stream_purpose_prefix("fam");
  confusion_prefix_ = stream_purpose_prefix("confusion");
  logits_prefix_ = stream_purpose_prefix("logits");
  calibration_prefix_ = stream_purpose_prefix("calibration");
  runner_prefix_ = stream_purpose_prefix("runner-up");
  latent_shared_w_ = std::sqrt(config_.copula_rho);
  latent_family_w_ = std::sqrt(config_.family_rho);
  latent_eps_w_ =
      std::sqrt(1.0 - config_.copula_rho - config_.family_rho);

  derive_offsets(dataset);
  fixed_point_calibrate(dataset);
}

void CalibratedModel::derive_offsets(const data::Dataset& dataset) {
  offsets_.assign(schema_.size(), {});
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    const auto it = profile_.unfairness.find(schema_[a].name);
    const double target = it == profile_.unfairness.end() ? 0.0 : it->second;
    std::vector<bool> low_side(schema_[a].group_count(), false);
    for (std::size_t g = 0; g < schema_[a].group_count(); ++g) {
      low_side[g] = dataset.is_unprivileged(a, g);
    }
    offsets_[a] = solve_offsets(dataset.group_sizes(a), low_side, target);
  }
}

void CalibratedModel::fixed_point_calibrate(const data::Dataset& dataset) {
  for (std::size_t round = 0; round < config_.calibration_rounds; ++round) {
    // Expected (not sampled) accuracy per group and overall.
    double overall = 0.0;
    std::vector<std::vector<double>> group_sum(schema_.size());
    std::vector<std::vector<std::size_t>> group_n(schema_.size());
    for (std::size_t a = 0; a < schema_.size(); ++a) {
      group_sum[a].assign(schema_[a].group_count(), 0.0);
      group_n[a].assign(schema_[a].group_count(), 0);
    }
    for (const data::Record& record : dataset.records()) {
      const double p = correctness_probability(record);
      overall += p;
      for (std::size_t a = 0; a < schema_.size(); ++a) {
        group_sum[a][record.groups[a]] += p;
        ++group_n[a][record.groups[a]];
      }
    }
    overall /= static_cast<double>(dataset.size());

    // Re-center the base accuracy.
    base_accuracy_ += 0.9 * (profile_.accuracy - overall);

    // Rescale each attribute's offsets toward its unfairness target.
    for (std::size_t a = 0; a < schema_.size(); ++a) {
      const auto it = profile_.unfairness.find(schema_[a].name);
      if (it == profile_.unfairness.end() || it->second <= 0.0) continue;
      double realized = 0.0;
      for (std::size_t g = 0; g < schema_[a].group_count(); ++g) {
        if (group_n[a][g] == 0) continue;
        const double acc_g =
            group_sum[a][g] / static_cast<double>(group_n[a][g]);
        realized += std::abs(acc_g - overall);
      }
      if (realized <= 1e-9) continue;
      const double scale = clamp(it->second / realized, 0.5, 2.0);
      const double damped = 1.0 + 0.8 * (scale - 1.0);
      for (double& d : offsets_[a]) d *= damped;
    }
  }
}

double CalibratedModel::correctness_probability(
    const data::Record& record) const {
  MUFFIN_REQUIRE(record.groups.size() == schema_.size(),
                 "record schema mismatch");
  double p = base_accuracy_;
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    p += offsets_[a][record.groups[a]];
  }
  return clamp(p, config_.min_probability, config_.max_probability);
}

double CalibratedModel::latent_quantile(const data::Record& record) const {
  const UidDigits digits(record.uid);
  const std::string_view uid = digits.view();
  // Family factor: derived from (family, record), so same-family models
  // share it while cross-family models do not. Both streams are counter
  // streams — one splitmix64 draw through normal_quantile — matching the
  // batch kernel's normal_planar pass draw for draw.
  const double eps =
      CounterRng(fork_seed(model_seed_, stream_name_hash(eps_prefix_, uid)))
          .normal();
  const double family_factor =
      CounterRng(fork_seed(family_seed_, stream_name_hash(fam_prefix_, uid)))
          .normal();
  const double latent = latent_shared_w_ * record.difficulty +
                        latent_family_w_ * family_factor +
                        latent_eps_w_ * eps;
  return normal_cdf(latent);
}

bool CalibratedModel::is_correct(const data::Record& record) const {
  return latent_quantile(record) < correctness_probability(record);
}

const std::vector<double>& CalibratedModel::group_offsets(
    std::size_t attribute) const {
  MUFFIN_REQUIRE(attribute < offsets_.size(), "attribute index out of range");
  return offsets_[attribute];
}

tensor::Vector CalibratedModel::scores(const data::Record& record) const {
  // A single-row span through the full score_batch entry — one code path,
  // so the scores() == score_batch() row contract holds by construction
  // instead of by maintaining two implementations in step. The per-call
  // setup (output matrix, scratch arenas, one whole-kernel pass at n = 1)
  // is the honest price of the unified kernel; batch callers amortize it.
  const tensor::Matrix scored = score_batch({&record, 1});
  const auto row = scored.row(0);
  return tensor::Vector(row.begin(), row.end());
}

tensor::Matrix CalibratedModel::score_batch(
    std::span<const data::Record> records) const {
  tensor::Matrix out;
  out.resize_for_overwrite(records.size(), num_classes_);
  // Row-split over the shared worker pool: each row is a pure function of
  // its record and the frozen calibration state, so any partition is
  // bit-identical to the serial whole-batch call. Scratch lives per block —
  // no shared mutable state between workers.
  const std::size_t classes = num_classes_;
  double* base = out.flat().data();
  parallel_for(records.size(), /*grain=*/64,
               [&](std::size_t begin, std::size_t end) {
                 BatchScratch scratch;
                 score_rows(records.subspan(begin, end - begin), scratch,
                            base + begin * classes, classes);
               });
  return out;
}

void CalibratedModel::score_rows(std::span<const data::Record> records,
                                 BatchScratch& s, double* out,
                                 std::size_t ldo) const {
  const std::size_t n = records.size();
  const std::size_t classes = num_classes_;
  if (n == 0) return;

  s.words.resize(6 * n);
  s.reals.resize((7 + classes) * n);
  s.indices.resize(2 * n);
  s.correct.resize(n);
  std::uint64_t* const eps_states = s.words.data();
  std::uint64_t* const fam_states = eps_states + n;  // adjacent: see header
  std::uint64_t* const logit_states = fam_states + n;
  std::uint64_t* const confusion_seeds = logit_states + n;
  std::uint64_t* const calibration_seeds = confusion_seeds + n;
  std::uint64_t* const runner_seeds = calibration_seeds + n;
  double* const eps = s.reals.data();
  double* const fam = eps + n;  // adjacent to eps: one planar sweep fills both
  double* const probability = fam + n;
  double* const difficulty = probability + n;
  double* const slack = difficulty + n;
  double* const margin = slack + n;
  double* const max_background = margin + n;
  double* const planes = max_background + n;
  std::size_t* const label = s.indices.data();
  std::size_t* const predicted = label + n;
  unsigned char* const correct = s.correct.data();

  // Pass A — scalar prologue: validate, evaluate the calibrated
  // correctness probability and derive every substream seed. The uid's
  // decimal digits render once per record and continue all six purpose
  // prefixes in lock-step (independent multiply chains pipeline; hashing
  // six names costs barely more than one).
  for (std::size_t i = 0; i < n; ++i) {
    const data::Record& record = records[i];
    MUFFIN_REQUIRE(record.label < classes, "record label out of range");
    probability[i] = correctness_probability(record);
    difficulty[i] = record.difficulty;
    label[i] = record.label;
    const UidDigits digits(record.uid);
    std::uint64_t hashes[6] = {eps_prefix_,    fam_prefix_,
                               logits_prefix_, confusion_prefix_,
                               calibration_prefix_, runner_prefix_};
    fnv1a64_continue_many(hashes, digits.view());
    eps_states[i] = fork_seed(model_seed_, hashes[0]);
    fam_states[i] = fork_seed(family_seed_, hashes[1]);
    logit_states[i] = fork_seed(model_seed_, hashes[2]);
    confusion_seeds[i] = fork_seed(model_seed_, hashes[3]);
    calibration_seeds[i] = fork_seed(model_seed_, hashes[4]);
    runner_seeds[i] = fork_seed(model_seed_, hashes[5]);
  }

  // Pass B — whole-batch idiosyncratic and family draws through the SIMD
  // backend (one splitmix64 step + inverse normal CDF per lane); the eps
  // and fam columns are adjacent in the arena, so one sweep fills both.
  tensor::normal_planar_into(std::span<std::uint64_t>(eps_states, 2 * n),
                             std::span<double>(eps, 2 * n));

  // Pass C — copula latent, correctness and slack as column sweeps. The
  // latent expression mirrors latent_quantile() term for term.
  for (std::size_t i = 0; i < n; ++i) {
    const double latent = latent_shared_w_ * difficulty[i] +
                          latent_family_w_ * fam[i] +
                          latent_eps_w_ * eps[i];
    const double quantile = normal_cdf(latent);
    const double p = probability[i];
    correct[i] = quantile < p ? 1 : 0;
    slack[i] = p - quantile;  // >0 when correct, <0 when wrong
  }

  // Pass D — predicted class. Correct rows predict the label; wrong rows
  // draw from the prior-weighted confusion categorical by inverting one
  // uniform against the precomputed per-label mass — no per-record weight
  // vector, no heap traffic (the old implementation allocated one
  // std::vector<double> per wrongly-predicted record here).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lab = label[i];
    std::size_t pred = lab;
    if (!correct[i]) {
      const double total = confusion_total_[lab];
      MUFFIN_REQUIRE(total > 0.0, "confusion weights must have mass");
      const double point = CounterRng(confusion_seeds[i]).uniform() * total;
      double cumulative = 0.0;
      for (std::size_t c = 0; c < classes; ++c) {
        if (c == lab) continue;
        pred = c;  // falls through to the last bucket on the edge
        cumulative += class_priors_[c] + 1e-6;
        if (point < cumulative) break;
      }
    }
    predicted[i] = pred;
  }

  // Pass E — background logit noise, one planar sweep per class so every
  // record consumes its logits stream in ascending class order, then one
  // sweep scaling all planes by the noise stddev.
  for (std::size_t c = 0; c < classes; ++c) {
    tensor::normal_planar_into(std::span<std::uint64_t>(logit_states, n),
                               std::span<double>(planes + c * n, n));
  }
  const double noise_scale = config_.logit_noise;
  for (std::size_t k = 0; k < classes * n; ++k) planes[k] *= noise_scale;

  // Pass F — max background logit over every class except the prediction
  // (the true label's noise must be included, or it could accidentally win
  // the argmax and break the calibrated correctness marginal).
  for (std::size_t i = 0; i < n; ++i) max_background[i] = 0.0;
  for (std::size_t c = 0; c < classes; ++c) {
    const double* pc = planes + c * n;
    for (std::size_t i = 0; i < n; ++i) {
      if (c != predicted[i]) {
        max_background[i] = std::max(max_background[i], pc[i]);
      }
    }
  }

  // Pass G — confidence miscalibration and the margin. Some wrong answers
  // look sharp, some correct answers look hesitant (bounds how much of the
  // disagreement set a fused head can possibly recover, like a real CNN
  // ensemble).
  for (std::size_t i = 0; i < n; ++i) {
    const bool right = correct[i] != 0;
    const double gap = slack[i];
    const bool miscalibrated =
        CounterRng(calibration_seeds[i])
            .bernoulli(right ? config_.hesitant_rate
                             : config_.overconfident_rate);
    const bool sharp_regime = right != miscalibrated;
    double m = 0.0;
    if (sharp_regime) {
      const double sharpness =
          right ? clamp(gap, 0.0, 1.0) : clamp(-gap, 0.0, 1.0);
      m = config_.correct_margin + config_.correct_margin_slope * sharpness;
    } else {
      // Flat regime: barely-decided samples leave the model visibly
      // uncertain — the margin shrinks and the score vector flattens.
      const double wobble = clamp(std::abs(gap) * 2.5, 0.0, 1.0);
      m = config_.wrong_margin * (0.25 + 0.75 * wobble);
    }
    // Domain familiarity: real CNNs are less confident on groups they
    // handle poorly, independent of whether this particular answer is
    // right. p encodes the group structure, so this leaks group identity
    // into the score shape — which is what lets the fairness-weighted head
    // training (Algorithm 1) specialize on unprivileged patterns.
    margin[i] = m * (0.4 + 0.8 * probability[i]);
  }

  // Pass H — peak and runner-up assembly: the predicted class lands
  // strictly on top; when wrong, the true class trails the prediction by
  // runner_up_gap (often ranked second).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lab = label[i];
    const std::size_t pred = predicted[i];
    const bool right = correct[i] != 0;
    const double top = max_background[i] + margin[i];
    planes[pred * n + i] = top;
    if (classes > 2) {
      // Runner-up slot: when wrong, the true class lands there only with
      // probability runner_up_rate — otherwise a random decoy class does.
      // When correct, a decoy always fills it (some class is always
      // second).
      CounterRng runner(runner_seeds[i]);
      std::size_t runner_class = lab;
      if (right || !runner.bernoulli(config_.runner_up_rate)) {
        do {
          runner_class = runner.index(classes);
        } while (runner_class == pred || runner_class == lab);
        if (right && runner.bernoulli(0.5)) {
          // Correct predictions may still rank the true class's own decoy
          // lower than background; skip the boost half the time.
          runner_class = pred;
        }
      }
      if (runner_class != pred) {
        planes[runner_class * n + i] = top - config_.runner_up_gap;
      }
    } else if (!right) {
      planes[lab * n + i] = top - config_.runner_up_gap;
    }
  }

  // Pass I — whole-batch softmax over the class-major planes through the
  // SIMD backend, written row-major straight into the output.
  tensor::softmax_planar_into(std::span<double>(planes, classes * n), n,
                              classes, n, out, ldo);
}

}  // namespace muffin::models
