// Architecture profiles for the off-the-shelf model pool.
//
// Each profile captures what the paper reports (or what we estimated from
// its figures) about one torchvision architecture trained on ISIC2019 /
// Fitzpatrick17K: overall accuracy, per-attribute unfairness score, and the
// trainable parameter count with the dataset-sized classification head.
// Parameter counts marked in profiles.cpp follow Table I where given
// (ShuffleNet_V2_X1_0, MobileNet_V3_Small) and the torchvision backbone
// arithmetic otherwise.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace muffin::models {

struct ArchitectureProfile {
  std::string name;    ///< e.g. "ResNet-18"
  std::string family;  ///< e.g. "ResNet"
  std::size_t parameter_count = 0;
  double accuracy = 0.0;  ///< overall test accuracy (fraction)
  /// Target unfairness score per attribute name (L1 definition, §3.1).
  std::map<std::string, double> unfairness;
  /// Attribute-k floor below which single-model optimization cannot push
  /// the unfairness score (paper Observation 2: "models encounter
  /// bottlenecks"). Defaults to 60% of the vanilla score when absent.
  std::map<std::string, double> bottleneck_floor;
  /// Optional: name of the model whose idiosyncratic random streams this
  /// model shares. Used by the baselines (common-random-numbers coupling):
  /// an optimized variant keeps its base model's per-record draws, so
  /// before/after deltas reflect the profile change, not resampling noise.
  std::string calibration_alias;

  [[nodiscard]] double unfairness_for(const std::string& attribute) const;
  [[nodiscard]] double floor_for(const std::string& attribute) const;
};

/// The ten ISIC2019 architectures of Fig. 1 / Table I.
[[nodiscard]] const std::vector<ArchitectureProfile>& isic2019_profiles();

/// The Fitzpatrick17K pool (ResNet / ShuffleNet / MobileNet families, §4.5).
[[nodiscard]] const std::vector<ArchitectureProfile>& fitzpatrick17k_profiles();

/// Look up a profile by name in a list; throws muffin::Error when absent.
[[nodiscard]] const ArchitectureProfile& profile_by_name(
    const std::vector<ArchitectureProfile>& profiles, const std::string& name);

}  // namespace muffin::models
