// Model pool — the set of off-the-shelf models Muffin unites.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/calibrated.h"
#include "models/model.h"

namespace muffin::models {

/// An ordered collection of frozen models sharing one dataset schema.
class ModelPool {
 public:
  ModelPool() = default;

  void add(ModelPtr model);
  [[nodiscard]] std::size_t size() const { return models_.size(); }
  [[nodiscard]] const Model& at(std::size_t index) const;
  [[nodiscard]] ModelPtr share(std::size_t index) const;
  [[nodiscard]] const Model& by_name(const std::string& name) const;
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<ModelPtr> models_;
};

/// Calibrated ISIC2019 pool: the ten Fig. 1 architectures realized against
/// `dataset` (see CalibratedModel for the simulation contract).
[[nodiscard]] ModelPool calibrated_isic_pool(const data::Dataset& dataset,
                                             CalibrationConfig config = {});

/// Calibrated Fitzpatrick17K pool (§4.5: ResNet/ShuffleNet/MobileNet).
[[nodiscard]] ModelPool calibrated_fitzpatrick_pool(
    const data::Dataset& dataset, CalibrationConfig config = {});

}  // namespace muffin::models
