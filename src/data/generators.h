// Synthetic dataset generators.
//
// The paper evaluates on ISIC2019 and Fitzpatrick17K, which are image
// datasets we cannot ship. Muffin itself never consumes pixels — every
// component operates on (model scores, label, attribute groups) — so the
// generators here reproduce the *statistical* structure that drives the
// paper's phenomena:
//
//  * marginal group sizes per attribute (rare groups exist, e.g. 2% of
//    lesions are oral/genital);
//  * anti-correlation between unprivileged groups of different attributes
//    (controlled by `unprivileged_repulsion`). This is the mechanical cause
//    of the seesaw in Fig. 2: re-balancing attribute A shifts the effective
//    distribution of attribute B away from B's unprivileged groups;
//  * class-prior skew inside unprivileged groups (`class_skew`), making
//    their samples genuinely harder;
//  * a latent per-sample difficulty (shared copula factor for the
//    calibrated model pool);
//  * group-shifted, difficulty-scaled Gaussian features so that real
//    trainable classifiers exhibit real unfairness.
#pragma once

#include "data/dataset.h"

namespace muffin::data {

/// Full description of a synthetic scenario.
struct SyntheticConfig {
  std::string name = "synthetic";
  std::size_t num_samples = 12000;
  std::size_t num_classes = 8;
  std::vector<AttributeSchema> schema;
  /// Marginal group distribution per attribute (rows sum to ~1).
  std::vector<std::vector<double>> group_marginals;
  /// Unprivileged flags per attribute/group (scenario ground truth).
  std::vector<std::vector<bool>> unprivileged;
  /// Class prior over the whole dataset (sums to ~1).
  std::vector<double> class_priors;
  /// Strength of anti-co-occurrence between unprivileged groups of
  /// attribute 0 and unprivileged groups of the other attributes. 0 makes
  /// attributes independent; larger values sharpen the Fig. 2 seesaw.
  double unprivileged_repulsion = 0.9;
  /// Flattens class priors inside unprivileged groups toward rare classes;
  /// 0 keeps priors unchanged, 1 makes them uniform.
  double class_skew = 0.55;
  /// Feature-space geometry for trainable classifiers.
  std::size_t feature_dim = 16;
  double class_separation = 2.4;
  double feature_noise = 1.0;
  /// Extra feature noise per unprivileged-group membership.
  double unprivileged_noise = 0.45;
  /// Feature centroid shift per (attribute, group).
  double group_shift = 0.5;
  std::uint64_t seed = 2019;

  /// Throws muffin::Error if the pieces are inconsistent.
  void validate() const;
};

/// Generate a dataset from a configuration.
[[nodiscard]] Dataset generate(const SyntheticConfig& config);

/// ISIC2019-like scenario: 8 diagnosis classes; attributes age (6 groups,
/// unprivileged 60-80/80+), gender (2 groups), site (9 groups, unprivileged
/// head/neck, lateral torso, oral/genital, palms/soles, posterior torso,
/// upper extremity). Group marginals follow the public ISIC2019 metadata.
[[nodiscard]] SyntheticConfig isic2019_config(std::size_t num_samples = 25331,
                                              std::uint64_t seed = 2019);
[[nodiscard]] Dataset synthetic_isic2019(std::size_t num_samples = 25331,
                                         std::uint64_t seed = 2019);

/// Fitzpatrick17K-like scenario: 9 classes; attributes skin tone (6 groups,
/// unprivileged olive/brown/black) and lesion type (3 groups, unprivileged
/// malignant).
[[nodiscard]] SyntheticConfig fitzpatrick17k_config(
    std::size_t num_samples = 16577, std::uint64_t seed = 1717);
[[nodiscard]] Dataset synthetic_fitzpatrick17k(std::size_t num_samples = 16577,
                                               std::uint64_t seed = 1717);

}  // namespace muffin::data
