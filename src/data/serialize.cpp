#include "data/serialize.h"

#include <limits>

namespace muffin::data {

void encode_record(const Record& record, std::vector<std::uint8_t>& out) {
  MUFFIN_REQUIRE(
      record.groups.size() <= std::numeric_limits<std::uint32_t>::max() &&
          record.features.size() <= std::numeric_limits<std::uint32_t>::max(),
      "record too wide for the wire format");
  common::put_u64(out, record.uid);
  common::put_u64(out, static_cast<std::uint64_t>(record.label));
  common::put_u32(out, static_cast<std::uint32_t>(record.groups.size()));
  for (const std::size_t group : record.groups) {
    common::put_u64(out, static_cast<std::uint64_t>(group));
  }
  common::put_f64(out, record.difficulty);
  common::put_u32(out, static_cast<std::uint32_t>(record.features.size()));
  common::put_f64_span(out, record.features);
}

Record decode_record(common::ByteReader& reader) {
  Record record;
  record.uid = reader.u64();
  record.label = static_cast<std::size_t>(reader.u64());
  const std::uint32_t group_count = reader.u32();
  reader.require_count(group_count, 8);
  record.groups.reserve(group_count);
  for (std::uint32_t g = 0; g < group_count; ++g) {
    record.groups.push_back(static_cast<std::size_t>(reader.u64()));
  }
  record.difficulty = reader.f64();
  const std::uint32_t feature_count = reader.u32();
  reader.require_count(feature_count, 8);
  reader.f64_into(record.features, feature_count);
  return record;
}

}  // namespace muffin::data
