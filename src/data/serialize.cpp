#include "data/serialize.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <set>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.h"
#include "obs/metrics.h"

namespace muffin::data {

void encode_record(const Record& record, std::vector<std::uint8_t>& out) {
  MUFFIN_REQUIRE(
      record.groups.size() <= std::numeric_limits<std::uint32_t>::max() &&
          record.features.size() <= std::numeric_limits<std::uint32_t>::max(),
      "record too wide for the wire format");
  common::put_u64(out, record.uid);
  common::put_u64(out, static_cast<std::uint64_t>(record.label));
  common::put_u32(out, static_cast<std::uint32_t>(record.groups.size()));
  for (const std::size_t group : record.groups) {
    common::put_u64(out, static_cast<std::uint64_t>(group));
  }
  common::put_f64(out, record.difficulty);
  common::put_u32(out, static_cast<std::uint32_t>(record.features.size()));
  common::put_f64_span(out, record.features);
}

Record decode_record(common::ByteReader& reader) {
  Record record;
  record.uid = reader.u64();
  record.label = static_cast<std::size_t>(reader.u64());
  const std::uint32_t group_count = reader.u32();
  reader.require_count(group_count, 8);
  record.groups.reserve(group_count);
  for (std::uint32_t g = 0; g < group_count; ++g) {
    record.groups.push_back(static_cast<std::size_t>(reader.u64()));
  }
  record.difficulty = reader.f64();
  const std::uint32_t feature_count = reader.u32();
  reader.require_count(feature_count, 8);
  reader.f64_into(record.features, feature_count);
  return record;
}

// ---------------------------------------------------------------------------
// Model artifact container.

namespace {

constexpr std::uint32_t kArtifactVersion = 2;
constexpr std::size_t kExtentAlign = 64;
// v1 header: magic, version, file_bytes, tensor_count, table_bytes.
// v2 appends a u64 model_version; both header sizes stay parseable.
constexpr std::size_t kHeaderBytesV1 = 4 + 4 + 8 + 4 + 8;
constexpr std::size_t kHeaderBytesV2 = kHeaderBytesV1 + 8;
constexpr std::size_t kMaxNameLen = 4096;

const std::uint8_t kMagic[4] = {'M', 'U', 'F', 'A'};

[[nodiscard]] std::size_t align_up(std::size_t v) {
  return (v + (kExtentAlign - 1)) & ~(kExtentAlign - 1);
}

obs::Gauge& mapped_bytes_gauge() {
  static obs::Gauge& gauge =
      obs::registry().gauge("data.mapped_artifact_bytes");
  return gauge;
}

}  // namespace

std::size_t dtype_size(TensorDtype dtype) {
  switch (dtype) {
    case TensorDtype::F64:
      return 8;
    case TensorDtype::Bf16:
      return 2;
    case TensorDtype::I8:
      return 1;
  }
  throw Error("unknown artifact tensor dtype");
}

const char* dtype_name(TensorDtype dtype) {
  switch (dtype) {
    case TensorDtype::F64:
      return "f64";
    case TensorDtype::Bf16:
      return "bf16";
    case TensorDtype::I8:
      return "int8";
  }
  throw Error("unknown artifact tensor dtype");
}

std::span<const double> ArtifactTensor::f64() const {
  MUFFIN_REQUIRE(dtype == TensorDtype::F64,
                 "artifact tensor '" + name + "' is not f64");
  // The 64-byte extent alignment makes this cast aligned; payloads are
  // written in the in-memory little-endian representation, so the mapped
  // bytes ARE the values (zero-copy is the container's purpose).
  return {reinterpret_cast<const double*>(data), count()};
}

std::span<const std::uint16_t> ArtifactTensor::bf16() const {
  MUFFIN_REQUIRE(dtype == TensorDtype::Bf16,
                 "artifact tensor '" + name + "' is not bf16");
  return {reinterpret_cast<const std::uint16_t*>(data), count()};
}

std::span<const std::int8_t> ArtifactTensor::i8() const {
  MUFFIN_REQUIRE(dtype == TensorDtype::I8,
                 "artifact tensor '" + name + "' is not int8");
  return {reinterpret_cast<const std::int8_t*>(data), count()};
}

void ArtifactWriter::add(std::string name, TensorDtype dtype,
                         std::size_t rows, std::size_t cols,
                         const void* values, std::size_t byte_len) {
  MUFFIN_REQUIRE(!name.empty() && name.size() <= kMaxNameLen,
                 "artifact tensor name must be 1..4096 bytes");
  for (const Entry& entry : entries_) {
    MUFFIN_REQUIRE(entry.name != name,
                   "duplicate artifact tensor name '" + name + "'");
  }
  Entry entry{std::move(name), dtype, rows, cols, {}};
  entry.payload.resize(byte_len);
  if (byte_len > 0) std::memcpy(entry.payload.data(), values, byte_len);
  entries_.push_back(std::move(entry));
}

void ArtifactWriter::add_f64(std::string name, std::size_t rows,
                             std::size_t cols,
                             std::span<const double> values) {
  MUFFIN_REQUIRE(values.size() == rows * cols,
                 "artifact tensor value count does not match its shape");
  // Doubles are stored as their IEEE-754 little-endian bytes — on the
  // little-endian hosts this project targets, a straight memcpy of the
  // in-memory representation.
  add(std::move(name), TensorDtype::F64, rows, cols, values.data(),
      values.size() * 8);
}

void ArtifactWriter::add_bf16(std::string name, std::size_t rows,
                              std::size_t cols,
                              std::span<const std::uint16_t> values) {
  MUFFIN_REQUIRE(values.size() == rows * cols,
                 "artifact tensor value count does not match its shape");
  add(std::move(name), TensorDtype::Bf16, rows, cols, values.data(),
      values.size() * 2);
}

void ArtifactWriter::add_i8(std::string name, std::size_t rows,
                            std::size_t cols,
                            std::span<const std::int8_t> values) {
  MUFFIN_REQUIRE(values.size() == rows * cols,
                 "artifact tensor value count does not match its shape");
  add(std::move(name), TensorDtype::I8, rows, cols, values.data(),
      values.size());
}

std::vector<std::uint8_t> ArtifactWriter::bytes() const {
  MUFFIN_REQUIRE(entries_.size() <= std::numeric_limits<std::uint32_t>::max(),
                 "too many tensors for the artifact format");
  // The table layout is fixed-width except for names, so its size — and
  // with it the payload start — is known before offsets are assigned.
  std::size_t table_bytes = 0;
  for (const Entry& entry : entries_) {
    table_bytes += 4 + entry.name.size() + 1 + 8 * 4;
  }
  const std::size_t payload_start = align_up(kHeaderBytesV2 + table_bytes);
  std::vector<std::size_t> offsets(entries_.size());
  std::size_t cursor = payload_start;
  for (std::size_t t = 0; t < entries_.size(); ++t) {
    offsets[t] = cursor;
    cursor = align_up(cursor + entries_[t].payload.size());
  }
  const std::size_t file_bytes =
      entries_.empty() ? payload_start
                       : offsets.back() + entries_.back().payload.size();

  std::vector<std::uint8_t> out;
  out.reserve(file_bytes);
  for (const std::uint8_t byte : kMagic) out.push_back(byte);
  common::put_u32(out, kArtifactVersion);
  common::put_u64(out, static_cast<std::uint64_t>(file_bytes));
  common::put_u32(out, static_cast<std::uint32_t>(entries_.size()));
  common::put_u64(out, static_cast<std::uint64_t>(table_bytes));
  common::put_u64(out, model_version_);
  for (std::size_t t = 0; t < entries_.size(); ++t) {
    const Entry& entry = entries_[t];
    common::put_u32(out, static_cast<std::uint32_t>(entry.name.size()));
    out.insert(out.end(), entry.name.begin(), entry.name.end());
    out.push_back(static_cast<std::uint8_t>(entry.dtype));
    common::put_u64(out, static_cast<std::uint64_t>(entry.rows));
    common::put_u64(out, static_cast<std::uint64_t>(entry.cols));
    common::put_u64(out, static_cast<std::uint64_t>(offsets[t]));
    common::put_u64(out, static_cast<std::uint64_t>(entry.payload.size()));
  }
  out.resize(file_bytes, 0);  // zero padding between aligned extents
  for (std::size_t t = 0; t < entries_.size(); ++t) {
    if (!entries_[t].payload.empty()) {
      std::memcpy(out.data() + offsets[t], entries_[t].payload.data(),
                  entries_[t].payload.size());
    }
  }
  return out;
}

void ArtifactWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> data = bytes();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  MUFFIN_REQUIRE(file != nullptr,
                 "cannot open artifact file for writing: " + path);
  const std::size_t written =
      data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), file);
  const int close_rc = std::fclose(file);
  MUFFIN_REQUIRE(written == data.size() && close_rc == 0,
                 "short write to artifact file: " + path);
}

// --- parsing ---------------------------------------------------------------

namespace {

struct ParsedArtifact {
  std::vector<ArtifactTensor> tensors;
  std::uint64_t model_version = 0;
};

/// Validate and index the container; returns tensors pointing into `bytes`.
ParsedArtifact parse_artifact(std::span<const std::uint8_t> bytes) {
  common::ByteReader reader(bytes);
  const auto magic = reader.bytes(4);
  MUFFIN_REQUIRE(std::equal(magic.begin(), magic.end(), std::begin(kMagic)),
                 "bad artifact magic (not a MUFA container)");
  const std::uint32_t version = reader.u32();
  MUFFIN_REQUIRE(version == 1 || version == kArtifactVersion,
                 "unsupported artifact version " + std::to_string(version));
  const std::uint64_t file_bytes = reader.u64();
  MUFFIN_REQUIRE(file_bytes == bytes.size(),
                 "artifact length prefix (" + std::to_string(file_bytes) +
                     ") does not match the container size (" +
                     std::to_string(bytes.size()) + ")");
  const std::uint32_t tensor_count = reader.u32();
  const std::uint64_t table_bytes = reader.u64();
  // v1 containers predate the model-version field; they read back as 0.
  const std::uint64_t model_version = version >= 2 ? reader.u64() : 0;
  MUFFIN_REQUIRE(table_bytes <= reader.remaining(),
                 "artifact table extends past the end of the container");
  // Each table entry is at least 4 + 1 name byte + 1 + 32 bytes, so a
  // hostile tensor_count that cannot fit is rejected before any loop.
  common::ByteReader table(reader.bytes(static_cast<std::size_t>(table_bytes)));
  table.require_count(tensor_count, 4 + 1 + 1 + 8 * 4);
  const std::size_t header_bytes =
      version >= 2 ? kHeaderBytesV2 : kHeaderBytesV1;
  const std::size_t payload_floor = align_up(header_bytes +
                                             static_cast<std::size_t>(table_bytes));

  std::vector<ArtifactTensor> tensors;
  tensors.reserve(tensor_count);
  std::set<std::string> names;
  for (std::uint32_t t = 0; t < tensor_count; ++t) {
    ArtifactTensor tensor;
    const std::uint32_t name_len = table.u32();
    MUFFIN_REQUIRE(name_len >= 1 && name_len <= kMaxNameLen,
                   "artifact tensor name length out of range");
    const auto name_bytes = table.bytes(name_len);
    tensor.name.assign(name_bytes.begin(), name_bytes.end());
    MUFFIN_REQUIRE(names.insert(tensor.name).second,
                   "duplicate artifact tensor name '" + tensor.name + "'");
    const std::uint8_t dtype = table.u8();
    MUFFIN_REQUIRE(dtype <= static_cast<std::uint8_t>(TensorDtype::I8),
                   "unknown artifact tensor dtype " + std::to_string(dtype));
    tensor.dtype = static_cast<TensorDtype>(dtype);
    const std::uint64_t rows = table.u64();
    const std::uint64_t cols = table.u64();
    const std::uint64_t offset = table.u64();
    const std::uint64_t byte_len = table.u64();
    // Shape sanity before any multiplication can wrap: both dimensions
    // and the element count are bounded by the (already validated)
    // extent length, which is bounded by the file size.
    const std::uint64_t elem = dtype_size(tensor.dtype);
    MUFFIN_REQUIRE(rows <= file_bytes && cols <= file_bytes &&
                       (rows == 0 || cols <= file_bytes / rows),
                   "artifact tensor '" + tensor.name +
                       "' shape overflows the container");
    MUFFIN_REQUIRE(byte_len == rows * cols * elem,
                   "artifact tensor '" + tensor.name +
                       "' byte length does not match its shape");
    MUFFIN_REQUIRE(offset % kExtentAlign == 0,
                   "artifact tensor '" + tensor.name +
                       "' extent is not 64-byte aligned");
    MUFFIN_REQUIRE(offset >= payload_floor && offset <= file_bytes &&
                       byte_len <= file_bytes - offset,
                   "artifact tensor '" + tensor.name +
                       "' extent is out of bounds");
    tensor.rows = static_cast<std::size_t>(rows);
    tensor.cols = static_cast<std::size_t>(cols);
    tensor.data = bytes.data() + offset;
    tensor.byte_len = static_cast<std::size_t>(byte_len);
    tensors.push_back(std::move(tensor));
  }
  MUFFIN_REQUIRE(table.done(),
                 "artifact table size does not match its entries");

  // Extents must not overlap (a lying offset pair could otherwise alias
  // one tensor's bytes as another's).
  std::vector<std::pair<std::size_t, std::size_t>> extents;
  extents.reserve(tensors.size());
  for (const ArtifactTensor& tensor : tensors) {
    extents.emplace_back(static_cast<std::size_t>(tensor.data - bytes.data()),
                         tensor.byte_len);
  }
  std::sort(extents.begin(), extents.end());
  for (std::size_t t = 1; t < extents.size(); ++t) {
    MUFFIN_REQUIRE(
        extents[t - 1].first + extents[t - 1].second <= extents[t].first,
        "artifact tensor extents overlap");
  }
  return {std::move(tensors), model_version};
}

}  // namespace

/// Backing bytes of a parsed artifact: either a heap buffer or a
/// read-only mmap. The destructor releases whichever is held (and keeps
/// the mapped-bytes gauge honest).
struct Artifact::Storage {
  std::vector<std::uint8_t> heap;
  void* map_base = nullptr;
  std::size_t map_len = 0;

  Storage() = default;
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    if (map_base != nullptr) {
      return {static_cast<const std::uint8_t*>(map_base), map_len};
    }
    return heap;
  }

  ~Storage() {
    if (map_base != nullptr) {
      ::munmap(map_base, map_len);
      mapped_bytes_gauge().sub(static_cast<std::int64_t>(map_len));
    }
  }
};

Artifact::Artifact(std::shared_ptr<const Storage> storage,
                   std::vector<ArtifactTensor> tensors,
                   std::uint64_t model_version)
    : storage_(std::move(storage)),
      tensors_(std::move(tensors)),
      model_version_(model_version) {}

Artifact Artifact::from_bytes(std::vector<std::uint8_t> bytes) {
  auto storage = std::make_shared<Storage>();
  storage->heap = std::move(bytes);
  ParsedArtifact parsed = parse_artifact(storage->bytes());
  return Artifact(std::move(storage), std::move(parsed.tensors),
                  parsed.model_version);
}

Artifact Artifact::load_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  MUFFIN_REQUIRE(file != nullptr, "cannot open artifact file: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  MUFFIN_REQUIRE(!read_error, "error reading artifact file: " + path);
  return from_bytes(std::move(bytes));
}

Artifact Artifact::map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  MUFFIN_REQUIRE(fd >= 0, "cannot open artifact file: " + path);
  struct ::stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw Error("cannot stat artifact file (or it is empty): " + path);
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  MUFFIN_REQUIRE(base != MAP_FAILED, "mmap of artifact file failed: " + path);
  auto storage = std::make_shared<Storage>();
  storage->map_base = base;
  storage->map_len = len;
  mapped_bytes_gauge().add(static_cast<std::int64_t>(len));
  // Parse in place; a malformed file throws here and the Storage
  // destructor unmaps on the way out.
  ParsedArtifact parsed = parse_artifact(storage->bytes());
  return Artifact(std::move(storage), std::move(parsed.tensors),
                  parsed.model_version);
}

const ArtifactTensor* Artifact::find(const std::string& name) const {
  for (const ArtifactTensor& tensor : tensors_) {
    if (tensor.name == name) return &tensor;
  }
  return nullptr;
}

const ArtifactTensor& Artifact::tensor(const std::string& name) const {
  const ArtifactTensor* found = find(name);
  MUFFIN_REQUIRE(found != nullptr, "artifact has no tensor '" + name + "'");
  return *found;
}

bool Artifact::mapped() const { return storage_->map_base != nullptr; }

std::size_t Artifact::byte_size() const { return storage_->bytes().size(); }

std::shared_ptr<const void> Artifact::keepalive() const { return storage_; }

}  // namespace muffin::data
