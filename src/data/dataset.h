// Dataset representation.
//
// Records carry everything the framework consumes: the class label, the
// group id under every sensitive attribute, a synthetic feature vector (for
// the trainable-classifier substrate) and a latent per-sample `difficulty`.
// The difficulty is the shared factor of the Gaussian copula that the
// calibrated off-the-shelf models use — it models "this lesion is
// intrinsically ambiguous", which is what makes model errors correlate
// across architectures (paper Fig. 3). See DESIGN.md §1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/attribute.h"

namespace muffin::data {

/// One labelled sample.
struct Record {
  std::uint64_t uid = 0;            ///< stable id (idiosyncratic model noise)
  std::size_t label = 0;            ///< class id in [0, num_classes)
  std::vector<std::size_t> groups;  ///< group id per attribute
  double difficulty = 0.0;          ///< shared copula factor, ~N(0,1)
  std::vector<double> features;     ///< synthetic feature vector
};

/// Train/validation/test index partition.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
  std::vector<std::size_t> test;
};

/// A labelled dataset with sensitive-attribute structure.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, std::size_t num_classes,
          std::vector<AttributeSchema> schema);

  void add_record(Record record);
  void reserve(std::size_t n);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<AttributeSchema>& schema() const {
    return schema_;
  }
  [[nodiscard]] const Record& record(std::size_t i) const;
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }

  /// Mark which groups of an attribute are unprivileged (scenario ground
  /// truth set by the generator; detection from model accuracy lives in the
  /// fairness module).
  void set_unprivileged(std::size_t attribute,
                        std::vector<bool> unprivileged_groups);
  [[nodiscard]] bool is_unprivileged(std::size_t attribute,
                                     std::size_t group) const;
  /// Group ids flagged unprivileged for one attribute.
  [[nodiscard]] std::vector<std::size_t> unprivileged_groups(
      std::size_t attribute) const;

  /// Indices of records in group `group` of attribute `attribute`.
  [[nodiscard]] std::vector<std::size_t> group_indices(
      std::size_t attribute, std::size_t group) const;
  /// Number of records per group for one attribute.
  [[nodiscard]] std::vector<std::size_t> group_sizes(
      std::size_t attribute) const;
  /// Number of records per class.
  [[nodiscard]] std::vector<std::size_t> class_sizes() const;

  /// Random stratification-free split by fractions (paper: 64/16/20).
  [[nodiscard]] SplitIndices split(double train_fraction,
                                   double validation_fraction,
                                   SplitRng& rng) const;

  /// Materialize a subset as a standalone Dataset (keeps schema/metadata).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices,
                               const std::string& suffix) const;

 private:
  std::string name_;
  std::size_t num_classes_ = 0;
  std::vector<AttributeSchema> schema_;
  std::vector<std::vector<bool>> unprivileged_;
  std::vector<Record> records_;
};

}  // namespace muffin::data
