// Sensitive-attribute schema (paper §3.1).
//
// A dataset carries a set A = {a_1..a_K} of sensitive attributes; each
// attribute a_k partitions the data into named groups D_1..D_G. This module
// describes that structure; group membership itself lives on each Record.
#pragma once

#include <string>
#include <vector>

namespace muffin::data {

/// One sensitive attribute and its group names, e.g.
/// {"age", {"0-20", "20-40", "40-60", "60-80", "80+", "unknown"}}.
struct AttributeSchema {
  std::string name;
  std::vector<std::string> groups;

  [[nodiscard]] std::size_t group_count() const { return groups.size(); }
  /// Index of a group name; throws muffin::Error when absent.
  [[nodiscard]] std::size_t group_index(const std::string& group) const;

  bool operator==(const AttributeSchema& other) const = default;
};

/// Find an attribute by name in a schema list; throws when absent.
[[nodiscard]] std::size_t attribute_index(
    const std::vector<AttributeSchema>& schema, const std::string& name);

}  // namespace muffin::data
