#include "data/attribute.h"

#include "common/error.h"

namespace muffin::data {

std::size_t AttributeSchema::group_index(const std::string& group) const {
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == group) return i;
  }
  throw Error("attribute '" + name + "' has no group named '" + group + "'");
}

std::size_t attribute_index(const std::vector<AttributeSchema>& schema,
                            const std::string& name) {
  for (std::size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name == name) return i;
  }
  throw Error("no attribute named '" + name + "' in schema");
}

}  // namespace muffin::data
