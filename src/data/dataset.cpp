#include "data/dataset.h"

#include <numeric>

#include "common/error.h"

namespace muffin::data {

Dataset::Dataset(std::string name, std::size_t num_classes,
                 std::vector<AttributeSchema> schema)
    : name_(std::move(name)),
      num_classes_(num_classes),
      schema_(std::move(schema)) {
  MUFFIN_REQUIRE(num_classes_ > 0, "dataset needs at least one class");
  MUFFIN_REQUIRE(!schema_.empty(), "dataset needs at least one attribute");
  unprivileged_.resize(schema_.size());
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    unprivileged_[a].assign(schema_[a].group_count(), false);
  }
}

void Dataset::add_record(Record record) {
  MUFFIN_REQUIRE(record.label < num_classes_, "record label out of range");
  MUFFIN_REQUIRE(record.groups.size() == schema_.size(),
                 "record must carry one group per attribute");
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    MUFFIN_REQUIRE(record.groups[a] < schema_[a].group_count(),
                   "record group id out of range");
  }
  records_.push_back(std::move(record));
}

void Dataset::reserve(std::size_t n) { records_.reserve(n); }

const Record& Dataset::record(std::size_t i) const {
  MUFFIN_REQUIRE(i < records_.size(), "record index out of range");
  return records_[i];
}

void Dataset::set_unprivileged(std::size_t attribute,
                               std::vector<bool> unprivileged_groups) {
  MUFFIN_REQUIRE(attribute < schema_.size(), "attribute index out of range");
  MUFFIN_REQUIRE(unprivileged_groups.size() ==
                     schema_[attribute].group_count(),
                 "unprivileged flags must cover every group");
  unprivileged_[attribute] = std::move(unprivileged_groups);
}

bool Dataset::is_unprivileged(std::size_t attribute,
                              std::size_t group) const {
  MUFFIN_REQUIRE(attribute < schema_.size(), "attribute index out of range");
  MUFFIN_REQUIRE(group < schema_[attribute].group_count(),
                 "group index out of range");
  return unprivileged_[attribute][group];
}

std::vector<std::size_t> Dataset::unprivileged_groups(
    std::size_t attribute) const {
  MUFFIN_REQUIRE(attribute < schema_.size(), "attribute index out of range");
  std::vector<std::size_t> groups;
  for (std::size_t g = 0; g < unprivileged_[attribute].size(); ++g) {
    if (unprivileged_[attribute][g]) groups.push_back(g);
  }
  return groups;
}

std::vector<std::size_t> Dataset::group_indices(std::size_t attribute,
                                                std::size_t group) const {
  MUFFIN_REQUIRE(attribute < schema_.size(), "attribute index out of range");
  MUFFIN_REQUIRE(group < schema_[attribute].group_count(),
                 "group index out of range");
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].groups[attribute] == group) indices.push_back(i);
  }
  return indices;
}

std::vector<std::size_t> Dataset::group_sizes(std::size_t attribute) const {
  MUFFIN_REQUIRE(attribute < schema_.size(), "attribute index out of range");
  std::vector<std::size_t> sizes(schema_[attribute].group_count(), 0);
  for (const Record& record : records_) {
    ++sizes[record.groups[attribute]];
  }
  return sizes;
}

std::vector<std::size_t> Dataset::class_sizes() const {
  std::vector<std::size_t> sizes(num_classes_, 0);
  for (const Record& record : records_) ++sizes[record.label];
  return sizes;
}

SplitIndices Dataset::split(double train_fraction,
                            double validation_fraction, SplitRng& rng) const {
  MUFFIN_REQUIRE(train_fraction > 0.0 && validation_fraction >= 0.0 &&
                     train_fraction + validation_fraction < 1.0,
                 "split fractions must be positive and sum below 1");
  std::vector<std::size_t> order(records_.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  const auto n = static_cast<double>(order.size());
  const auto train_end = static_cast<std::size_t>(n * train_fraction);
  const auto val_end = static_cast<std::size_t>(
      n * (train_fraction + validation_fraction));
  SplitIndices split;
  split.train.assign(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(train_end));
  split.validation.assign(order.begin() + static_cast<std::ptrdiff_t>(train_end),
                          order.begin() + static_cast<std::ptrdiff_t>(val_end));
  split.test.assign(order.begin() + static_cast<std::ptrdiff_t>(val_end),
                    order.end());
  return split;
}

Dataset Dataset::subset(std::span<const std::size_t> indices,
                        const std::string& suffix) const {
  Dataset out(name_ + suffix, num_classes_, schema_);
  out.unprivileged_ = unprivileged_;
  out.reserve(indices.size());
  for (const std::size_t i : indices) {
    out.add_record(record(i));
  }
  return out;
}

}  // namespace muffin::data
