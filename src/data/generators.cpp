#include "data/generators.h"

#include <cmath>

#include "common/error.h"

namespace muffin::data {

namespace {

std::vector<double> normalized(std::vector<double> weights) {
  double total = 0.0;
  for (const double w : weights) total += w;
  MUFFIN_REQUIRE(total > 0.0, "distribution must have positive mass");
  for (double& w : weights) w /= total;
  return weights;
}

/// Conditional distribution of attribute-k groups given attribute-0 group:
/// marginal tilted away from unprivileged groups when g0 is unprivileged.
std::vector<double> conditional_groups(const SyntheticConfig& config,
                                       std::size_t attribute,
                                       bool g0_unprivileged) {
  std::vector<double> probs = config.group_marginals[attribute];
  if (g0_unprivileged && config.unprivileged_repulsion > 0.0) {
    for (std::size_t g = 0; g < probs.size(); ++g) {
      if (config.unprivileged[attribute][g]) {
        probs[g] *= std::exp(-config.unprivileged_repulsion);
      }
    }
  }
  return normalized(std::move(probs));
}

/// Class prior inside a record's groups: skewed toward rare classes in
/// unprivileged groups (their case mix is harder in the real datasets).
std::vector<double> conditional_classes(const SyntheticConfig& config,
                                        std::size_t unprivileged_count) {
  if (unprivileged_count == 0 || config.class_skew <= 0.0) {
    return config.class_priors;
  }
  const double skew =
      std::min(1.0, config.class_skew *
                        static_cast<double>(unprivileged_count));
  std::vector<double> probs(config.class_priors.size());
  for (std::size_t c = 0; c < probs.size(); ++c) {
    probs[c] = std::pow(config.class_priors[c], 1.0 - skew);
  }
  return normalized(std::move(probs));
}

}  // namespace

void SyntheticConfig::validate() const {
  MUFFIN_REQUIRE(num_samples > 0, "num_samples must be positive");
  MUFFIN_REQUIRE(num_classes > 1, "need at least two classes");
  MUFFIN_REQUIRE(!schema.empty(), "need at least one attribute");
  MUFFIN_REQUIRE(group_marginals.size() == schema.size(),
                 "one marginal distribution per attribute required");
  MUFFIN_REQUIRE(unprivileged.size() == schema.size(),
                 "one unprivileged flag set per attribute required");
  for (std::size_t a = 0; a < schema.size(); ++a) {
    MUFFIN_REQUIRE(group_marginals[a].size() == schema[a].group_count(),
                   "marginal size must match group count");
    MUFFIN_REQUIRE(unprivileged[a].size() == schema[a].group_count(),
                   "unprivileged flags must match group count");
    for (const double p : group_marginals[a]) {
      MUFFIN_REQUIRE(p >= 0.0, "marginals must be non-negative");
    }
  }
  MUFFIN_REQUIRE(class_priors.size() == num_classes,
                 "class priors must match num_classes");
  MUFFIN_REQUIRE(feature_dim > 0, "feature_dim must be positive");
  MUFFIN_REQUIRE(class_skew >= 0.0 && class_skew <= 1.0,
                 "class_skew must be in [0, 1]");
  MUFFIN_REQUIRE(unprivileged_repulsion >= 0.0,
                 "unprivileged_repulsion must be non-negative");
}

Dataset generate(const SyntheticConfig& config) {
  config.validate();
  SplitRng master(config.seed);
  SplitRng group_rng = master.fork("groups");
  SplitRng class_rng = master.fork("classes");
  SplitRng difficulty_rng = master.fork("difficulty");
  SplitRng feature_rng = master.fork("features");
  SplitRng geometry_rng = master.fork("geometry");

  // Fixed feature geometry: class centroids and per-(attribute, group)
  // offsets drawn once per scenario.
  std::vector<std::vector<double>> class_centroids(config.num_classes);
  for (auto& centroid : class_centroids) {
    centroid.resize(config.feature_dim);
    for (double& v : centroid) {
      v = geometry_rng.normal(0.0, config.class_separation /
                                       std::sqrt(static_cast<double>(
                                           config.feature_dim)));
    }
  }
  std::vector<std::vector<std::vector<double>>> group_offsets(
      config.schema.size());
  for (std::size_t a = 0; a < config.schema.size(); ++a) {
    group_offsets[a].resize(config.schema[a].group_count());
    for (auto& offset : group_offsets[a]) {
      offset.resize(config.feature_dim);
      for (double& v : offset) {
        v = geometry_rng.normal(
            0.0, config.group_shift /
                     std::sqrt(static_cast<double>(config.feature_dim)));
      }
    }
  }

  Dataset dataset(config.name, config.num_classes, config.schema);
  for (std::size_t a = 0; a < config.schema.size(); ++a) {
    dataset.set_unprivileged(a, config.unprivileged[a]);
  }
  dataset.reserve(config.num_samples);

  const std::vector<double> marginal0 = normalized(config.group_marginals[0]);
  for (std::size_t i = 0; i < config.num_samples; ++i) {
    Record record;
    record.uid = config.seed * 0x9e3779b97f4a7c15ULL + i;
    record.groups.resize(config.schema.size());

    // Attribute 0 from its marginal; the rest conditioned on whether the
    // attribute-0 group is unprivileged (anti-co-occurrence).
    record.groups[0] = group_rng.categorical(marginal0);
    const bool g0_unprivileged =
        config.unprivileged[0][record.groups[0]];
    for (std::size_t a = 1; a < config.schema.size(); ++a) {
      record.groups[a] =
          group_rng.categorical(conditional_groups(config, a, g0_unprivileged));
    }

    std::size_t unprivileged_count = 0;
    for (std::size_t a = 0; a < config.schema.size(); ++a) {
      if (config.unprivileged[a][record.groups[a]]) ++unprivileged_count;
    }

    record.label =
        class_rng.categorical(conditional_classes(config, unprivileged_count));
    record.difficulty = difficulty_rng.normal();

    // Features: class centroid + group offsets + difficulty-scaled noise,
    // with extra noise per unprivileged membership.
    const double noise_scale =
        config.feature_noise *
        (1.0 + config.unprivileged_noise *
                   static_cast<double>(unprivileged_count)) *
        (1.0 + 0.25 * std::tanh(record.difficulty));
    record.features.resize(config.feature_dim);
    for (std::size_t d = 0; d < config.feature_dim; ++d) {
      double value = class_centroids[record.label][d];
      for (std::size_t a = 0; a < config.schema.size(); ++a) {
        value += group_offsets[a][record.groups[a]][d];
      }
      value += feature_rng.normal(0.0, noise_scale);
      record.features[d] = value;
    }
    dataset.add_record(std::move(record));
  }
  return dataset;
}

SyntheticConfig isic2019_config(std::size_t num_samples, std::uint64_t seed) {
  SyntheticConfig config;
  config.name = "isic2019";
  config.num_samples = num_samples;
  config.num_classes = 8;  // MEL, NV, BCC, AK, BKL, DF, VASC, SCC
  config.seed = seed;
  config.schema = {
      {"age", {"0-20", "20-40", "40-60", "60-80", "80+", "unknown"}},
      {"gender", {"male", "female"}},
      {"site",
       {"anterior torso", "head/neck", "lateral torso", "lower extremity",
        "oral/genital", "palms/soles", "posterior torso", "unknown",
        "upper extremity"}}};
  config.group_marginals = {
      {0.06, 0.22, 0.34, 0.27, 0.08, 0.03},
      {0.52, 0.48},
      {0.18, 0.16, 0.03, 0.20, 0.02, 0.03, 0.19, 0.06, 0.13}};
  config.unprivileged = {
      {false, false, false, true, true, false},
      {false, false},
      {false, true, true, false, true, true, true, false, true}};
  config.class_priors = {0.178, 0.508, 0.131, 0.034,
                         0.104, 0.010, 0.010, 0.025};
  return config;
}

Dataset synthetic_isic2019(std::size_t num_samples, std::uint64_t seed) {
  return generate(isic2019_config(num_samples, seed));
}

SyntheticConfig fitzpatrick17k_config(std::size_t num_samples,
                                      std::uint64_t seed) {
  SyntheticConfig config;
  config.name = "fitzpatrick17k";
  config.num_samples = num_samples;
  config.num_classes = 9;
  config.seed = seed;
  config.schema = {
      {"skin_tone", {"light", "white", "medium", "olive", "brown", "black"}},
      {"type", {"benign", "malignant", "non-neoplastic"}}};
  config.group_marginals = {{0.18, 0.28, 0.24, 0.14, 0.10, 0.06},
                            {0.45, 0.30, 0.25}};
  config.unprivileged = {{false, false, false, true, true, true},
                         {false, true, false}};
  config.class_priors = {0.22, 0.17, 0.14, 0.12, 0.10,
                         0.09, 0.07, 0.05, 0.04};
  // Fitzpatrick17K is smaller and noisier than ISIC2019; the paper's
  // absolute accuracies there are ~62%, so widen the noise.
  config.feature_noise = 1.35;
  config.unprivileged_repulsion = 0.8;
  return config;
}

Dataset synthetic_fitzpatrick17k(std::size_t num_samples,
                                 std::uint64_t seed) {
  return generate(fitzpatrick17k_config(num_samples, seed));
}

}  // namespace muffin::data
