// Wire serialization of data::Record.
//
// The cross-process serving tier ships record *batches* to remote shards
// (serve/rpc/wire.h); the per-record byte layout is a data-layer concern
// and lives here so any future transport (RPC, on-disk replay logs,
// snapshot shipping) encodes records exactly one way.
//
// Layout (all integers little-endian, doubles as IEEE-754 bit patterns —
// see common/bytes.h):
//
//   u64 uid
//   u64 label
//   u32 group_count,   u64 x group_count
//   f64 difficulty
//   u32 feature_count, f64 x feature_count
//
// Decoding is bounds-checked: a truncated buffer or a hostile count
// field throws muffin::Error before any over-read or over-allocation.
// Round-tripping is bit-exact (doubles travel as raw bit patterns), so a
// record scored remotely sees exactly the bytes the client held.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "data/dataset.h"

namespace muffin::data {

/// Append the wire encoding of `record` to `out`.
void encode_record(const Record& record, std::vector<std::uint8_t>& out);

/// Decode one record at the reader's cursor; throws muffin::Error on a
/// truncated or malformed encoding.
[[nodiscard]] Record decode_record(common::ByteReader& reader);

}  // namespace muffin::data
