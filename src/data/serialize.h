// Wire serialization of data::Record, and the binary model-artifact
// container.
//
// The cross-process serving tier ships record *batches* to remote shards
// (serve/rpc/wire.h); the per-record byte layout is a data-layer concern
// and lives here so any future transport (RPC, on-disk replay logs,
// snapshot shipping) encodes records exactly one way.
//
// Record layout (all integers little-endian, doubles as IEEE-754 bit
// patterns — see common/bytes.h):
//
//   u64 uid
//   u64 label
//   u32 group_count,   u64 x group_count
//   f64 difficulty
//   u32 feature_count, f64 x feature_count
//
// Decoding is bounds-checked: a truncated buffer or a hostile count
// field throws muffin::Error before any over-read or over-allocation.
// Round-tripping is bit-exact (doubles travel as raw bit patterns), so a
// record scored remotely sees exactly the bytes the client held.
//
// ## Model artifacts ("MUFA")
//
// A versioned, mmap-able container of named tensors, designed so a shard
// server can serve straight out of the page cache: every tensor extent is
// 64-byte aligned within the file, the payload is stored in its in-memory
// representation (little-endian f64 / bf16 / int8), and Artifact::map_file
// maps the file read-only and hands out zero-copy spans into it.
//
// File layout (all integers little-endian):
//
//   magic "MUFA" (4 bytes)
//   u32 version (currently 2; version-1 files still parse)
//   u64 file_bytes     — total file size; the length prefix every other
//                        bound is checked against
//   u32 tensor_count
//   u64 table_bytes    — size of the tensor table that follows
//   u64 model_version  — monotonic lifecycle version (v2 headers only;
//                        a v1 container reads back as model version 0)
//   tensor table, tensor_count entries:
//     u32 name_len, name bytes (UTF-8, no NUL)
//     u8  dtype          (0 = f64, 1 = bf16, 2 = int8)
//     u64 rows, u64 cols
//     u64 offset         — absolute, 64-byte aligned, >= payload start
//     u64 byte_len       — must equal rows * cols * dtype size
//   zero padding to the first 64-byte boundary, then tensor payloads at
//   their table offsets (extents non-overlapping, zero padding between)
//
// Parsing never trusts the file: truncation at any byte, a lying
// file_bytes/count/offset, overlapping or out-of-bounds extents,
// misaligned offsets, duplicate names and unknown magic/version/dtype all
// throw muffin::Error before any over-read or over-allocation — the same
// contract the RPC wire format holds against hostile peers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "data/dataset.h"

namespace muffin::data {

/// Append the wire encoding of `record` to `out`.
void encode_record(const Record& record, std::vector<std::uint8_t>& out);

/// Decode one record at the reader's cursor; throws muffin::Error on a
/// truncated or malformed encoding.
[[nodiscard]] Record decode_record(common::ByteReader& reader);

/// Element type of an artifact tensor.
enum class TensorDtype : std::uint8_t { F64 = 0, Bf16 = 1, I8 = 2 };

/// Bytes per element of `dtype`; throws on an unknown value.
[[nodiscard]] std::size_t dtype_size(TensorDtype dtype);
[[nodiscard]] const char* dtype_name(TensorDtype dtype);

/// Builder for a model artifact: collect named tensors, then serialize
/// them with bytes() or write_file().
class ArtifactWriter {
 public:
  void add_f64(std::string name, std::size_t rows, std::size_t cols,
               std::span<const double> values);
  void add_bf16(std::string name, std::size_t rows, std::size_t cols,
                std::span<const std::uint16_t> values);
  void add_i8(std::string name, std::size_t rows, std::size_t cols,
              std::span<const std::int8_t> values);

  /// Stamp the container with a monotonic model version (default 0).
  /// The serving tier uses this to order hot-swaps: an engine refuses to
  /// swap backwards, so a stale artifact cannot roll a fleet back.
  void set_model_version(std::uint64_t version) { model_version_ = version; }
  [[nodiscard]] std::uint64_t model_version() const { return model_version_; }

  /// Serialize the collected tensors into the container format.
  [[nodiscard]] std::vector<std::uint8_t> bytes() const;
  /// bytes() written to `path` (replacing any existing file); throws
  /// muffin::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    TensorDtype dtype;
    std::size_t rows;
    std::size_t cols;
    std::vector<std::uint8_t> payload;
  };
  void add(std::string name, TensorDtype dtype, std::size_t rows,
           std::size_t cols, const void* values, std::size_t byte_len);

  std::vector<Entry> entries_;
  std::uint64_t model_version_ = 0;
};

/// One parsed tensor: metadata plus a pointer into the artifact's storage
/// (heap buffer or read-only mapping). Views are valid for the lifetime
/// of any Artifact (or keepalive()) sharing that storage.
struct ArtifactTensor {
  std::string name;
  TensorDtype dtype = TensorDtype::F64;
  std::size_t rows = 0;
  std::size_t cols = 0;
  const std::uint8_t* data = nullptr;
  std::size_t byte_len = 0;

  [[nodiscard]] std::size_t count() const { return rows * cols; }
  /// Typed zero-copy views; each throws unless the dtype matches. The
  /// 64-byte extent alignment guarantees the casts are aligned for both
  /// heap and mapped storage.
  [[nodiscard]] std::span<const double> f64() const;
  [[nodiscard]] std::span<const std::uint16_t> bf16() const;
  [[nodiscard]] std::span<const std::int8_t> i8() const;
};

/// A parsed model artifact. Copies share the underlying storage
/// (shared_ptr semantics); the storage — and, for map_file, the mapping —
/// lives until the last copy and the last keepalive() holder are gone.
/// Mapped bytes are reported on the "data.mapped_artifact_bytes" gauge.
class Artifact {
 public:
  /// Parse an artifact from a heap buffer the Artifact takes over.
  [[nodiscard]] static Artifact from_bytes(std::vector<std::uint8_t> bytes);
  /// Read the whole file into a heap buffer and parse it.
  [[nodiscard]] static Artifact load_file(const std::string& path);
  /// Map the file read-only (POSIX mmap) and parse in place: the
  /// zero-copy cold-start path — tensor payloads are served straight
  /// from the page cache, never copied onto the heap.
  [[nodiscard]] static Artifact map_file(const std::string& path);

  [[nodiscard]] const std::vector<ArtifactTensor>& tensors() const {
    return tensors_;
  }
  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const ArtifactTensor* find(const std::string& name) const;
  /// Lookup by name; throws muffin::Error when absent.
  [[nodiscard]] const ArtifactTensor& tensor(const std::string& name) const;

  /// The monotonic lifecycle version stamped into the header (0 for
  /// version-1 containers, which predate the field).
  [[nodiscard]] std::uint64_t model_version() const { return model_version_; }

  /// Whether the storage is a read-only file mapping.
  [[nodiscard]] bool mapped() const;
  /// Total container size in bytes.
  [[nodiscard]] std::size_t byte_size() const;
  /// An owner handle for the storage: borrowers of tensor pointers (e.g.
  /// nn::Linear::adopt_weights) hold this to keep the pages alive without
  /// keeping the Artifact object itself.
  [[nodiscard]] std::shared_ptr<const void> keepalive() const;

 private:
  struct Storage;
  Artifact(std::shared_ptr<const Storage> storage,
           std::vector<ArtifactTensor> tensors, std::uint64_t model_version);

  std::shared_ptr<const Storage> storage_;
  std::vector<ArtifactTensor> tensors_;
  std::uint64_t model_version_ = 0;
};

}  // namespace muffin::data
