// Single-attribute fairness baselines: Method D and Method L (paper §2, §4).
//
// D ("data"): re-balance the training distribution in favour of the target
// attribute's unprivileged groups (oversampling / augmentation, ref. [33]).
// L ("loss"): fairness-aware loss — cost-sensitive weighting of the training
// objective toward the target attribute (weighted balanced-type loss,
// ref. [34]).
//
// Two execution paths are provided:
//
// 1. optimize_trainable(): genuinely retrains a TrainableClassifier with
//    method-specific sample weights. Because the synthetic generator makes
//    unprivileged groups of different attributes anti-co-occur, re-balancing
//    one attribute measurably unbalances the other — the Fig. 2 seesaw
//    emerges from real training here.
//
// 2. optimize_calibrated(): applies a *transfer model* to a CalibratedModel
//    profile, producing the optimized model's profile directly. Its
//    constants are calibrated to Table I and encode the paper's three
//    observations: (a) the seesaw (spill onto the untargeted attribute),
//    (b) bottlenecks (models already near their floor backfire when pushed,
//    e.g. DenseNet121 on site), and (c) hard attributes (many groups) defeat
//    small-capacity models outright (e.g. ShuffleNet on site).
#pragma once

#include <memory>
#include <string>

#include "data/dataset.h"
#include "models/calibrated.h"
#include "models/trainable.h"

namespace muffin::baselines {

enum class Method {
  DataBalance,  ///< "D" — oversample unprivileged groups of the attribute
  FairLoss      ///< "L" — fairness-regularized (cost-sensitive) loss
};

[[nodiscard]] std::string to_string(Method method);

/// Transfer-model constants (see file comment; defaults match Table I).
struct TransferConfig {
  double gain_data = 0.45;        ///< U reduction fraction, Method D
  double gain_loss = 0.35;        ///< U reduction fraction, Method L
  double spill_data = 0.15;       ///< base spill onto untargeted attributes
  double spill_loss = 0.25;
  double backfire_data = 0.22;    ///< U increase when optimization fails
  double backfire_loss = 0.28;
  double bottleneck_margin = 0.05;  ///< headroom below which models backfire
  double fail_threshold = 0.45;   ///< hardness*(1-capacity) beyond this fails
  double acc_gain_data = 0.018;   ///< D accuracy shift scale (small models)
  double acc_drop_loss = 0.020;   ///< L accuracy penalty scale
};

/// Attribute hardness in [0, 1]: attributes with more groups are harder to
/// balance (paper §4.2 item 4: site's 9 subgroups vs age's 6).
[[nodiscard]] double attribute_hardness(std::size_t group_count);

/// Model capacity in [0, 1] from the parameter count (log scale).
[[nodiscard]] double capacity_score(std::size_t parameter_count);

/// Result of applying a method to a calibrated model.
struct TransferOutcome {
  models::ArchitectureProfile profile;  ///< optimized profile
  bool target_improved = false;         ///< did U_target go down?
};

/// Derive the optimized profile for `model` targeting `attribute`.
[[nodiscard]] TransferOutcome transfer_profile(
    const models::CalibratedModel& model, const data::Dataset& dataset,
    const std::string& attribute, Method method, TransferConfig config = {});

/// Apply a method to a calibrated model; returns the optimized model
/// (named e.g. "ResNet-18+D(age)") calibrated against `dataset`.
[[nodiscard]] models::ModelPtr optimize_calibrated(
    const models::CalibratedModel& model, const data::Dataset& dataset,
    const std::string& attribute, Method method, TransferConfig config = {});

/// Method-specific per-sample training weights for the trainable path.
/// D: inverse group-frequency weights on the target attribute.
/// L: cost-sensitive weights boosting unprivileged groups by `lambda`.
[[nodiscard]] std::vector<double> method_weights(const data::Dataset& train,
                                                 const std::string& attribute,
                                                 Method method,
                                                 double lambda = 1.5);

/// Retrain a fresh classifier on `train` with method weights.
[[nodiscard]] std::shared_ptr<models::TrainableClassifier> optimize_trainable(
    const data::Dataset& train, const std::string& attribute, Method method,
    models::TrainableConfig config = {}, double lambda = 1.5);

}  // namespace muffin::baselines
