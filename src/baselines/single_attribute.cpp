#include "baselines/single_attribute.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace muffin::baselines {

std::string to_string(Method method) {
  switch (method) {
    case Method::DataBalance:
      return "D";
    case Method::FairLoss:
      return "L";
  }
  throw Error("unknown baseline method");
}

double attribute_hardness(std::size_t group_count) {
  return clamp((static_cast<double>(group_count) - 4.0) / 6.0, 0.0, 1.0);
}

double capacity_score(std::size_t parameter_count) {
  MUFFIN_REQUIRE(parameter_count > 0, "parameter count must be positive");
  const double log_params = std::log10(static_cast<double>(parameter_count));
  return clamp((log_params - 5.5) / 2.0, 0.0, 1.0);
}

TransferOutcome transfer_profile(const models::CalibratedModel& model,
                                 const data::Dataset& dataset,
                                 const std::string& attribute, Method method,
                                 TransferConfig config) {
  const models::ArchitectureProfile& vanilla = model.profile();
  const std::size_t attr_index =
      data::attribute_index(dataset.schema(), attribute);
  const double u_target = vanilla.unfairness_for(attribute);
  const double floor = vanilla.floor_for(attribute);
  const double hardness =
      attribute_hardness(dataset.schema()[attr_index].group_count());
  const double capacity = capacity_score(vanilla.parameter_count);

  const bool is_data = method == Method::DataBalance;
  const double gain = is_data ? config.gain_data : config.gain_loss;
  const double spill = is_data ? config.spill_data : config.spill_loss;
  const double backfire = is_data ? config.backfire_data : config.backfire_loss;

  // Failure analysis: bottlenecked models and hard-attribute/small-model
  // combinations get worse when pushed (paper Observation 2 & Table I).
  const double headroom = u_target - floor;
  const bool bottlenecked = headroom < config.bottleneck_margin;
  const double fail_score = hardness * (1.0 - capacity);
  const bool failed = bottlenecked || fail_score > config.fail_threshold;

  TransferOutcome outcome;
  outcome.profile = vanilla;
  outcome.profile.name =
      vanilla.name + "+" + to_string(method) + "(" + attribute + ")";
  // Couple the optimized model's random streams to the base model (common
  // random numbers): before/after comparisons then isolate the profile
  // change instead of re-rolling every record's idiosyncratic noise.
  if (outcome.profile.calibration_alias.empty()) {
    outcome.profile.calibration_alias = vanilla.name;
  }

  double new_target = 0.0;
  if (failed) {
    // Backfire scales with how hard the attribute is to balance.
    new_target = u_target * (1.0 + backfire * (0.3 + hardness));
    outcome.target_improved = false;
  } else {
    const double headroom_fraction = headroom / std::max(u_target, 1e-9);
    const double achieved =
        gain * (0.4 + 0.6 * headroom_fraction) * (1.0 - 0.5 * fail_score);
    new_target = std::max(floor, u_target * (1.0 - achieved));
    outcome.target_improved = new_target < u_target;
  }
  outcome.profile.unfairness[attribute] = new_target;

  // Seesaw spill onto every other attribute with a nonzero target; spraying
  // is worse when the *targeted* attribute is the hard one (re-balancing 9
  // site groups distorts the age distribution more than vice versa).
  for (auto& [name, value] : outcome.profile.unfairness) {
    if (name == attribute || value <= 0.0) continue;
    value *= 1.0 + spill * (0.3 + 1.5 * hardness);
  }

  // Accuracy: D helps small models (more effective data), mildly; L pays an
  // accuracy tax that grows with attribute hardness.
  if (is_data) {
    outcome.profile.accuracy +=
        config.acc_gain_data * (1.0 - capacity) - 0.004 * hardness;
  } else {
    outcome.profile.accuracy -=
        config.acc_drop_loss * (0.5 + hardness) + 0.004 * (1.0 - capacity);
  }
  outcome.profile.accuracy = clamp(outcome.profile.accuracy, 0.05, 0.99);
  return outcome;
}

models::ModelPtr optimize_calibrated(const models::CalibratedModel& model,
                                     const data::Dataset& dataset,
                                     const std::string& attribute,
                                     Method method, TransferConfig config) {
  TransferOutcome outcome =
      transfer_profile(model, dataset, attribute, method, config);
  return std::make_shared<models::CalibratedModel>(
      std::move(outcome.profile), dataset, model.config());
}

std::vector<double> method_weights(const data::Dataset& train,
                                   const std::string& attribute,
                                   Method method, double lambda) {
  MUFFIN_REQUIRE(lambda >= 0.0, "lambda must be non-negative");
  const std::size_t attr_index =
      data::attribute_index(train.schema(), attribute);
  const std::vector<std::size_t> sizes = train.group_sizes(attr_index);
  const std::size_t group_count = train.schema()[attr_index].group_count();

  std::vector<double> group_weight(group_count, 1.0);
  if (method == Method::DataBalance) {
    // Inverse-frequency oversampling: every group contributes equal total
    // mass, which is what duplicating unprivileged images achieves.
    const double total = static_cast<double>(train.size());
    for (std::size_t g = 0; g < group_count; ++g) {
      if (sizes[g] == 0) continue;
      group_weight[g] = total / (static_cast<double>(group_count) *
                                 static_cast<double>(sizes[g]));
    }
  } else {
    // Cost-sensitive fair loss: boost the unprivileged groups of the
    // target attribute by lambda.
    for (std::size_t g = 0; g < group_count; ++g) {
      if (train.is_unprivileged(attr_index, g)) {
        group_weight[g] = 1.0 + lambda;
      }
    }
  }

  std::vector<double> weights(train.size(), 1.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    weights[i] = group_weight[train.record(i).groups[attr_index]];
    sum += weights[i];
  }
  // Normalize to mean 1 so the learning-rate scale is method-independent.
  const double scale = static_cast<double>(train.size()) / sum;
  for (double& w : weights) w *= scale;
  return weights;
}

std::shared_ptr<models::TrainableClassifier> optimize_trainable(
    const data::Dataset& train, const std::string& attribute, Method method,
    models::TrainableConfig config, double lambda) {
  const std::vector<double> weights =
      method_weights(train, attribute, method, lambda);
  auto classifier = std::make_shared<models::TrainableClassifier>(
      "trainable+" + to_string(method) + "(" + attribute + ")", train,
      config);
  classifier->fit(train, weights);
  return classifier;
}

}  // namespace muffin::baselines
