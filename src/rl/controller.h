// RNN controller (framework component #4).
//
// An LSTM processes the decision sequence; at every step a per-decision
// fully connected head maps the hidden state to logits over that step's
// vocabulary, invalid choices are masked out, and a token is sampled. The
// next step's input is a learned embedding of the sampled token.
//
// Updates follow Eq. 4 (Monte Carlo policy gradient / REINFORCE):
//   ∇J(θ) = 1/m Σ_k Σ_t γ^{T−t} ∇_θ log π_θ(a_t | a_{t−1:1}) (R_k − b)
// with b an exponential moving average of rewards and γ the per-step
// discount. An optional entropy bonus (off by default, matching the paper)
// counteracts premature collapse onto one structure.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/stats.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "rl/search_space.h"

namespace muffin::rl {

struct ControllerConfig {
  std::size_t hidden_dim = 32;
  std::size_t embedding_dim = 16;
  double learning_rate = 5e-3;
  double gamma = 0.97;           ///< exponential discount factor of Eq. 4
  double baseline_decay = 0.08;  ///< EMA decay for the reward baseline b
  double entropy_bonus = 0.0;    ///< weight of the entropy regularizer
  std::uint64_t seed = 42;
};

/// One sampled decision sequence.
struct SampledStructure {
  std::vector<std::size_t> tokens;
  StructureChoice choice;
  double log_prob = 0.0;  ///< Σ_t log π(a_t | a_{t−1:1})
};

/// A finished episode fed back to the controller.
struct EpisodeResult {
  std::vector<std::size_t> tokens;
  double reward = 0.0;
};

/// Statistics of one policy-gradient update.
struct UpdateStats {
  double mean_reward = 0.0;
  double baseline = 0.0;
  double mean_advantage = 0.0;
};

class RnnController {
 public:
  RnnController(SearchSpace space, ControllerConfig config);

  /// Sample a structure from the current policy.
  [[nodiscard]] SampledStructure sample(SplitRng& rng);

  /// Log-probability of an existing token sequence under the current
  /// policy (used in tests and for importance diagnostics).
  [[nodiscard]] double log_prob(const std::vector<std::size_t>& tokens);

  /// REINFORCE update over a batch of episodes (m = episodes.size()).
  UpdateStats update(std::span<const EpisodeResult> episodes);

  [[nodiscard]] const SearchSpace& space() const { return space_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }
  [[nodiscard]] double baseline() const { return baseline_.value(); }
  [[nodiscard]] std::size_t parameter_count() const;

 private:
  /// Forward pass over a full (given) token sequence; returns per-step
  /// masked probability vectors. Fills lstm_ caches for BPTT.
  std::vector<tensor::Vector> replay(const std::vector<std::size_t>& tokens);
  /// Embedding row feeding step `step` given the previous token.
  [[nodiscard]] std::size_t embedding_row(std::size_t step,
                                          std::size_t prev_token) const;
  std::vector<nn::ParamView> all_params();

  SearchSpace space_;
  ControllerConfig config_;
  std::vector<std::size_t> vocab_sizes_;
  std::vector<std::size_t> vocab_offsets_;
  nn::LstmCell lstm_;
  std::vector<std::unique_ptr<nn::Linear>> heads_;  ///< one per step
  tensor::Matrix embeddings_;       ///< (1 + total_vocab, embedding_dim)
  tensor::Matrix embedding_grad_;
  nn::Adam optimizer_;
  ExponentialMovingAverage baseline_;
};

}  // namespace muffin::rl
