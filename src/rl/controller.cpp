#include "rl/controller.h"

#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace muffin::rl {

namespace {
constexpr double kMaskedLogit = -1e30;

/// Masked softmax: invalid entries get probability 0.
tensor::Vector masked_softmax(std::span<const double> logits,
                              const std::vector<bool>& mask) {
  tensor::Vector adjusted(logits.begin(), logits.end());
  bool any_valid = false;
  for (std::size_t i = 0; i < adjusted.size(); ++i) {
    if (!mask[i]) {
      adjusted[i] = kMaskedLogit;
    } else {
      any_valid = true;
    }
  }
  MUFFIN_REQUIRE(any_valid, "mask leaves no valid choice");
  return tensor::softmax(adjusted);
}
}  // namespace

RnnController::RnnController(SearchSpace space, ControllerConfig config)
    : space_(std::move(space)),
      config_(config),
      lstm_(config.embedding_dim, config.hidden_dim),
      embeddings_(0, 0),
      embedding_grad_(0, 0),
      optimizer_(nn::AdamConfig{.learning_rate = config.learning_rate}),
      baseline_(config.baseline_decay) {
  space_.validate();
  MUFFIN_REQUIRE(config_.gamma > 0.0 && config_.gamma <= 1.0,
                 "gamma must be in (0, 1]");
  vocab_sizes_ = space_.vocab_sizes();
  vocab_offsets_.resize(vocab_sizes_.size(), 0);
  std::size_t offset = 0;
  for (std::size_t s = 0; s < vocab_sizes_.size(); ++s) {
    vocab_offsets_[s] = offset;
    offset += vocab_sizes_[s];
  }
  embeddings_.resize(1 + offset, config_.embedding_dim);
  embedding_grad_.resize(1 + offset, config_.embedding_dim);

  SplitRng rng(config_.seed);
  SplitRng lstm_rng = rng.fork("lstm");
  lstm_.init(lstm_rng);
  for (std::size_t s = 0; s < vocab_sizes_.size(); ++s) {
    heads_.push_back(
        std::make_unique<nn::Linear>(config_.hidden_dim, vocab_sizes_[s]));
    SplitRng head_rng = rng.fork("head:" + std::to_string(s));
    heads_.back()->init_xavier(head_rng);
  }
  SplitRng embed_rng = rng.fork("embeddings");
  for (double& v : embeddings_.flat()) {
    v = embed_rng.normal(0.0, 0.1);
  }
}

std::size_t RnnController::embedding_row(std::size_t step,
                                         std::size_t prev_token) const {
  if (step == 0) return 0;  // learned start token
  return 1 + vocab_offsets_[step - 1] + prev_token;
}

SampledStructure RnnController::sample(SplitRng& rng) {
  SampledStructure out;
  lstm_.begin_sequence();
  out.log_prob = 0.0;
  for (std::size_t step = 0; step < vocab_sizes_.size(); ++step) {
    const std::size_t prev = step == 0 ? 0 : out.tokens[step - 1];
    const tensor::Vector hidden =
        lstm_.step(embeddings_.row(embedding_row(step, prev)));
    const tensor::Vector logits = heads_[step]->forward(hidden);
    const std::vector<bool> mask = step_mask(space_, step, out.tokens);
    const tensor::Vector probs = masked_softmax(logits, mask);
    const std::size_t token =
        rng.categorical(std::vector<double>(probs.begin(), probs.end()));
    out.log_prob += std::log(std::max(probs[token], 1e-300));
    out.tokens.push_back(token);
  }
  out.choice = decode(space_, out.tokens);
  return out;
}

std::vector<tensor::Vector> RnnController::replay(
    const std::vector<std::size_t>& tokens) {
  MUFFIN_REQUIRE(tokens.size() == vocab_sizes_.size(),
                 "token sequence length mismatch");
  lstm_.begin_sequence();
  std::vector<tensor::Vector> probs_per_step;
  std::vector<std::size_t> prefix;
  for (std::size_t step = 0; step < tokens.size(); ++step) {
    const std::size_t prev = step == 0 ? 0 : tokens[step - 1];
    const tensor::Vector hidden =
        lstm_.step(embeddings_.row(embedding_row(step, prev)));
    const tensor::Vector logits = heads_[step]->forward(hidden);
    const std::vector<bool> mask = step_mask(space_, step, prefix);
    probs_per_step.push_back(masked_softmax(logits, mask));
    prefix.push_back(tokens[step]);
  }
  return probs_per_step;
}

double RnnController::log_prob(const std::vector<std::size_t>& tokens) {
  const std::vector<tensor::Vector> probs = replay(tokens);
  double total = 0.0;
  for (std::size_t step = 0; step < tokens.size(); ++step) {
    total += std::log(std::max(probs[step][tokens[step]], 1e-300));
  }
  return total;
}

std::vector<nn::ParamView> RnnController::all_params() {
  std::vector<nn::ParamView> params = lstm_.params();
  for (const auto& head : heads_) {
    for (auto& view : head->params()) params.push_back(view);
  }
  params.push_back({embeddings_.flat(), embedding_grad_.flat()});
  return params;
}

UpdateStats RnnController::update(std::span<const EpisodeResult> episodes) {
  MUFFIN_REQUIRE(!episodes.empty(), "update requires at least one episode");
  const std::size_t steps = vocab_sizes_.size();

  // Zero gradients.
  lstm_.zero_grad();
  for (const auto& head : heads_) head->zero_grad();
  embedding_grad_.fill(0.0);

  UpdateStats stats;
  // Baseline b is updated first with the batch mean (so even the first
  // batch has a sensible advantage), then advantages use the EMA value.
  double batch_mean = 0.0;
  for (const EpisodeResult& episode : episodes) {
    batch_mean += episode.reward;
  }
  batch_mean /= static_cast<double>(episodes.size());
  baseline_.update(batch_mean);
  const double baseline = baseline_.value();

  double advantage_sum = 0.0;
  for (const EpisodeResult& episode : episodes) {
    const double advantage = episode.reward - baseline;
    advantage_sum += advantage;
    // Replay the episode to rebuild LSTM caches and per-step probs.
    const std::vector<tensor::Vector> probs = replay(episode.tokens);

    // Per-step gradient at the head output (minimizing -J):
    //   dLoss/dlogit = γ^{T−t−1} · advantage · (π − onehot) / m
    // plus the entropy-bonus term when enabled.
    std::vector<tensor::Vector> grad_h_per_step(
        steps, tensor::Vector(config_.hidden_dim, 0.0));
    for (std::size_t step = 0; step < steps; ++step) {
      const tensor::Vector& pi = probs[step];
      const double discount = std::pow(
          config_.gamma, static_cast<double>(steps - 1 - step));
      const double scale =
          discount * advantage / static_cast<double>(episodes.size());
      tensor::Vector grad_logits(pi.size(), 0.0);
      for (std::size_t v = 0; v < pi.size(); ++v) {
        grad_logits[v] = scale * pi[v];
      }
      grad_logits[episode.tokens[step]] -= scale;

      if (config_.entropy_bonus > 0.0) {
        // Loss includes -β H(π); dH/dlogit_j = -π_j (log π_j + H).
        double entropy = 0.0;
        for (const double p : pi) {
          if (p > 0.0) entropy -= p * std::log(p);
        }
        for (std::size_t v = 0; v < pi.size(); ++v) {
          if (pi[v] <= 0.0) continue;
          grad_logits[v] += config_.entropy_bonus /
                            static_cast<double>(episodes.size()) * pi[v] *
                            (std::log(pi[v]) + entropy);
        }
      }
      grad_h_per_step[step] = heads_[step]->backward(grad_logits);
    }

    // BPTT through the LSTM, then route input gradients to embeddings.
    const std::vector<tensor::Vector> grad_inputs =
        lstm_.backward_sequence(grad_h_per_step);
    for (std::size_t step = 0; step < steps; ++step) {
      const std::size_t prev = step == 0 ? 0 : episode.tokens[step - 1];
      const std::size_t row = embedding_row(step, prev);
      for (std::size_t d = 0; d < config_.embedding_dim; ++d) {
        embedding_grad_(row, d) += grad_inputs[step][d];
      }
    }
  }

  // Gradients already carry the 1/m factor; step with batch_size 1.
  std::vector<nn::ParamView> params = all_params();
  optimizer_.step(params, 1);

  stats.mean_reward = batch_mean;
  stats.baseline = baseline;
  stats.mean_advantage =
      advantage_sum / static_cast<double>(episodes.size());
  return stats;
}

std::size_t RnnController::parameter_count() const {
  std::size_t count = lstm_.parameter_count() + embeddings_.size();
  for (const auto& head : heads_) {
    count += head->parameter_count();
  }
  return count;
}

}  // namespace muffin::rl
