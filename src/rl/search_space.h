// Search space of the model-fusing structure (framework component #1).
//
// The controller emits one token per decision step:
//   steps 0..P-1       : which pool model fills body slot p (distinct,
//                        enforced by masking already-chosen models);
//   step P             : number of hidden layers in the muffin head;
//   steps P+1..P+Hmax  : width of each hidden layer (always Hmax tokens are
//                        sampled to keep the sequence length fixed; layers
//                        beyond the chosen count are ignored at decode);
//   last step          : hidden activation function.
// Table I's search used 2-model bodies with 2 hidden layers from widths
// like {10, 12, 16, 18}; those values are the defaults here.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "nn/activation.h"
#include "nn/mlp.h"

namespace muffin::rl {

struct SearchSpace {
  std::size_t pool_size = 0;          ///< number of off-the-shelf models
  std::size_t paired_models = 2;      ///< body size P
  /// Body slots forced to specific pool models (Table I fixes the first
  /// slot to the architecture under study). Must be < paired_models long.
  std::vector<std::size_t> forced_models;
  std::vector<std::size_t> hidden_width_choices = {8, 10, 12, 16, 18};
  std::size_t min_hidden_layers = 1;
  std::size_t max_hidden_layers = 3;
  std::vector<nn::Activation> activation_choices =
      nn::searchable_activations();

  /// Throws muffin::Error when inconsistent.
  void validate() const;

  [[nodiscard]] std::size_t num_steps() const;
  /// Vocabulary size of each decision step.
  [[nodiscard]] std::vector<std::size_t> vocab_sizes() const;
  /// Total vocabulary across steps (for the controller embedding table).
  [[nodiscard]] std::size_t total_vocab() const;
  /// Number of possible structures (for exhaustive-search tests).
  [[nodiscard]] double structure_count() const;
};

/// A decoded model-fusing structure choice.
struct StructureChoice {
  std::vector<std::size_t> model_indices;  ///< body, distinct pool indices
  std::vector<std::size_t> hidden_dims;    ///< head hidden widths
  nn::Activation activation = nn::Activation::Relu;

  [[nodiscard]] std::string to_string() const;
};

/// Decode a token sequence (throws on malformed sequences). Masking
/// guarantees sampled sequences are always decodable.
[[nodiscard]] StructureChoice decode(const SearchSpace& space,
                                     const std::vector<std::size_t>& tokens);

/// Valid-token mask for `step` given the tokens chosen so far. All-true for
/// non-model steps; for model steps, previously chosen and forced models are
/// masked out (false).
[[nodiscard]] std::vector<bool> step_mask(
    const SearchSpace& space, std::size_t step,
    const std::vector<std::size_t>& tokens_so_far);

/// Whether `step` selects a body model (vs. a head hyperparameter).
[[nodiscard]] bool is_model_step(const SearchSpace& space, std::size_t step);

}  // namespace muffin::rl
