#include "rl/search_space.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace muffin::rl {

namespace {
std::size_t free_model_slots(const SearchSpace& space) {
  return space.paired_models - space.forced_models.size();
}
}  // namespace

void SearchSpace::validate() const {
  MUFFIN_REQUIRE(pool_size >= 1, "search space needs a non-empty pool");
  MUFFIN_REQUIRE(paired_models >= 1, "need at least one paired model");
  MUFFIN_REQUIRE(paired_models <= pool_size,
                 "cannot pair more models than the pool holds");
  MUFFIN_REQUIRE(forced_models.size() < paired_models ||
                     (forced_models.size() == paired_models &&
                      paired_models == pool_size),
                 "at least one body slot should be free to search");
  for (const std::size_t m : forced_models) {
    MUFFIN_REQUIRE(m < pool_size, "forced model index out of range");
    MUFFIN_REQUIRE(std::count(forced_models.begin(), forced_models.end(), m) ==
                       1,
                   "forced models must be distinct");
  }
  MUFFIN_REQUIRE(!hidden_width_choices.empty(),
                 "need at least one hidden width choice");
  for (const std::size_t w : hidden_width_choices) {
    MUFFIN_REQUIRE(w > 0, "hidden widths must be positive");
  }
  MUFFIN_REQUIRE(min_hidden_layers >= 1, "need at least one hidden layer");
  MUFFIN_REQUIRE(max_hidden_layers >= min_hidden_layers,
                 "max hidden layers must be >= min");
  MUFFIN_REQUIRE(!activation_choices.empty(),
                 "need at least one activation choice");
  MUFFIN_REQUIRE(free_model_slots(*this) <= pool_size - forced_models.size(),
                 "not enough distinct pool models for the body");
}

std::size_t SearchSpace::num_steps() const {
  return free_model_slots(*this) + 1 + max_hidden_layers + 1;
}

std::vector<std::size_t> SearchSpace::vocab_sizes() const {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 0; s < free_model_slots(*this); ++s) {
    sizes.push_back(pool_size);
  }
  sizes.push_back(max_hidden_layers - min_hidden_layers + 1);
  for (std::size_t s = 0; s < max_hidden_layers; ++s) {
    sizes.push_back(hidden_width_choices.size());
  }
  sizes.push_back(activation_choices.size());
  return sizes;
}

std::size_t SearchSpace::total_vocab() const {
  std::size_t total = 0;
  for (const std::size_t v : vocab_sizes()) total += v;
  return total;
}

double SearchSpace::structure_count() const {
  double count = 1.0;
  std::size_t available = pool_size - forced_models.size();
  for (std::size_t s = 0; s < free_model_slots(*this); ++s) {
    count *= static_cast<double>(available - s);
  }
  count *= static_cast<double>(max_hidden_layers - min_hidden_layers + 1);
  for (std::size_t s = 0; s < max_hidden_layers; ++s) {
    count *= static_cast<double>(hidden_width_choices.size());
  }
  count *= static_cast<double>(activation_choices.size());
  return count;
}

std::string StructureChoice::to_string() const {
  std::ostringstream os;
  os << "body={";
  for (std::size_t i = 0; i < model_indices.size(); ++i) {
    os << (i ? "," : "") << model_indices[i];
  }
  os << "} hidden=[";
  for (std::size_t i = 0; i < hidden_dims.size(); ++i) {
    os << (i ? "," : "") << hidden_dims[i];
  }
  os << "] act=" << nn::to_string(activation);
  return os.str();
}

bool is_model_step(const SearchSpace& space, std::size_t step) {
  return step < free_model_slots(space);
}

std::vector<bool> step_mask(const SearchSpace& space, std::size_t step,
                            const std::vector<std::size_t>& tokens_so_far) {
  const std::vector<std::size_t> vocab = space.vocab_sizes();
  MUFFIN_REQUIRE(step < vocab.size(), "step index out of range");
  MUFFIN_REQUIRE(tokens_so_far.size() >= step,
                 "need all earlier tokens to build a mask");
  std::vector<bool> mask(vocab[step], true);
  if (!is_model_step(space, step)) return mask;
  for (const std::size_t m : space.forced_models) {
    mask[m] = false;
  }
  for (std::size_t s = 0; s < step; ++s) {
    if (is_model_step(space, s)) mask[tokens_so_far[s]] = false;
  }
  return mask;
}

StructureChoice decode(const SearchSpace& space,
                       const std::vector<std::size_t>& tokens) {
  space.validate();
  MUFFIN_REQUIRE(tokens.size() == space.num_steps(),
                 "token count must match the decision sequence length");
  const std::vector<std::size_t> vocab = space.vocab_sizes();
  for (std::size_t s = 0; s < tokens.size(); ++s) {
    MUFFIN_REQUIRE(tokens[s] < vocab[s], "token out of vocabulary range");
  }

  StructureChoice choice;
  choice.model_indices = space.forced_models;
  const std::size_t free_slots = free_model_slots(space);
  for (std::size_t s = 0; s < free_slots; ++s) {
    const std::size_t m = tokens[s];
    MUFFIN_REQUIRE(std::count(choice.model_indices.begin(),
                              choice.model_indices.end(), m) == 0,
                   "decoded body models must be distinct");
    choice.model_indices.push_back(m);
  }
  const std::size_t layer_count = space.min_hidden_layers + tokens[free_slots];
  for (std::size_t layer = 0; layer < layer_count; ++layer) {
    choice.hidden_dims.push_back(
        space.hidden_width_choices[tokens[free_slots + 1 + layer]]);
  }
  choice.activation = space.activation_choices[tokens.back()];
  return choice;
}

}  // namespace muffin::rl
