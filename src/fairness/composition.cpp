#include "fairness/composition.h"

#include <numeric>

#include "common/error.h"

namespace muffin::fairness {

namespace {
std::vector<std::size_t> all_indices(const data::Dataset& dataset) {
  std::vector<std::size_t> indices(dataset.size());
  std::iota(indices.begin(), indices.end(), 0);
  return indices;
}
}  // namespace

Composition joint_composition(const models::Model& first,
                              const models::Model& second,
                              const data::Dataset& dataset,
                              std::span<const std::size_t> indices) {
  return joint_composition(first.predict_all(dataset),
                           second.predict_all(dataset), dataset, indices);
}

Composition joint_composition(std::span<const std::size_t> first_predictions,
                              std::span<const std::size_t> second_predictions,
                              const data::Dataset& dataset,
                              std::span<const std::size_t> indices) {
  MUFFIN_REQUIRE(first_predictions.size() == dataset.size() &&
                     second_predictions.size() == dataset.size(),
                 "prediction vectors must match dataset size");
  const std::vector<std::size_t> fallback =
      indices.empty() ? all_indices(dataset) : std::vector<std::size_t>{};
  const std::span<const std::size_t> subset =
      indices.empty() ? std::span<const std::size_t>(fallback) : indices;
  MUFFIN_REQUIRE(!subset.empty(), "composition needs at least one record");

  Composition comp;
  for (const std::size_t i : subset) {
    MUFFIN_REQUIRE(i < dataset.size(), "record index out of range");
    const std::size_t label = dataset.record(i).label;
    const bool a = first_predictions[i] == label;
    const bool b = second_predictions[i] == label;
    if (a && b) {
      comp.both_correct += 1.0;
    } else if (a) {
      comp.only_first += 1.0;
    } else if (b) {
      comp.only_second += 1.0;
    } else {
      comp.both_wrong += 1.0;
    }
  }
  const double n = static_cast<double>(subset.size());
  comp.both_correct /= n;
  comp.only_first /= n;
  comp.only_second /= n;
  comp.both_wrong /= n;
  comp.sample_count = subset.size();
  return comp;
}

FusedAttribution fused_attribution(std::span<const std::size_t> fused_predictions,
                                   const models::Model& first,
                                   const models::Model& second,
                                   const data::Dataset& dataset,
                                   std::span<const std::size_t> indices) {
  MUFFIN_REQUIRE(fused_predictions.size() == dataset.size(),
                 "fused predictions must match dataset size");
  const std::vector<std::size_t> first_pred = first.predict_all(dataset);
  const std::vector<std::size_t> second_pred = second.predict_all(dataset);
  const std::vector<std::size_t> fallback =
      indices.empty() ? all_indices(dataset) : std::vector<std::size_t>{};
  const std::span<const std::size_t> subset =
      indices.empty() ? std::span<const std::size_t>(fallback) : indices;
  MUFFIN_REQUIRE(!subset.empty(), "attribution needs at least one record");

  FusedAttribution attribution;
  for (const std::size_t i : subset) {
    MUFFIN_REQUIRE(i < dataset.size(), "record index out of range");
    const std::size_t label = dataset.record(i).label;
    const bool fused = fused_predictions[i] == label;
    const bool a = first_pred[i] == label;
    const bool b = second_pred[i] == label;
    if (fused) {
      if (a && b) {
        attribution.correct_both += 1.0;
      } else if (a) {
        attribution.correct_only_first += 1.0;
      } else if (b) {
        attribution.correct_only_second += 1.0;
      } else {
        attribution.correct_neither += 1.0;
      }
    } else {
      if (a || b) {
        attribution.wrong_recoverable += 1.0;
      } else {
        attribution.wrong_both += 1.0;
      }
    }
  }
  const double n = static_cast<double>(subset.size());
  attribution.correct_both /= n;
  attribution.correct_only_first /= n;
  attribution.correct_only_second /= n;
  attribution.correct_neither /= n;
  attribution.wrong_recoverable /= n;
  attribution.wrong_both /= n;
  attribution.sample_count = subset.size();
  return attribution;
}

}  // namespace muffin::fairness
