// Agreement/disagreement composition between two classifiers (Fig. 3) and
// between a fused system and its paired models (Fig. 6c).
//
// The composition over a record subset counts the four joint outcomes:
//   00 — both models wrong        01 — only model A correct
//   10 — only model B correct     11 — both models correct.
// Fig. 3's insight: 01+10 (the disagreement mass where one model is right)
// is the headroom Muffin's head can recover for unprivileged groups.
#pragma once

#include <span>

#include "data/dataset.h"
#include "models/model.h"

namespace muffin::fairness {

/// Fractions of the four joint correctness outcomes; sums to 1.
struct Composition {
  double both_wrong = 0.0;      ///< 00
  double only_first = 0.0;      ///< 01: first correct, second wrong
  double only_second = 0.0;     ///< 10: second correct, first wrong
  double both_correct = 0.0;    ///< 11
  std::size_t sample_count = 0;

  /// P(at least one model correct) — the "ideal union" upper bound of
  /// Fig. 3(b).
  [[nodiscard]] double union_accuracy() const {
    return only_first + only_second + both_correct;
  }
  /// P(exactly one correct) — the disagreement mass (paper: 15.93%).
  [[nodiscard]] double disagreement() const {
    return only_first + only_second;
  }
};

/// Composition of two models over the given record indices (whole dataset
/// when `indices` is empty).
[[nodiscard]] Composition joint_composition(
    const models::Model& first, const models::Model& second,
    const data::Dataset& dataset, std::span<const std::size_t> indices = {});

/// Composition from precomputed prediction vectors.
[[nodiscard]] Composition joint_composition(
    std::span<const std::size_t> first_predictions,
    std::span<const std::size_t> second_predictions,
    const data::Dataset& dataset, std::span<const std::size_t> indices = {});

/// How a fused system's decisions relate to its two paired models on a
/// subset: of the fused system's correct (resp. wrong) answers, which paired
/// model also had them right (Fig. 6c bars).
struct FusedAttribution {
  double correct_both = 0.0;         ///< fused right, both models right
  double correct_only_first = 0.0;   ///< fused right, only first right
  double correct_only_second = 0.0;  ///< fused right, only second right
  double correct_neither = 0.0;      ///< fused right, both models wrong
  double wrong_recoverable = 0.0;    ///< fused wrong although one model right
  double wrong_both = 0.0;           ///< fused wrong, both models wrong too
  std::size_t sample_count = 0;

  [[nodiscard]] double fused_accuracy() const {
    return correct_both + correct_only_first + correct_only_second +
           correct_neither;
  }
};

[[nodiscard]] FusedAttribution fused_attribution(
    std::span<const std::size_t> fused_predictions,
    const models::Model& first, const models::Model& second,
    const data::Dataset& dataset, std::span<const std::size_t> indices = {});

}  // namespace muffin::fairness
