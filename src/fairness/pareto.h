// Pareto-frontier extraction for the exploration plots (Fig. 5 / Fig. 7).
#pragma once

#include <span>
#include <vector>

namespace muffin::fairness {

/// A point in objective space with an arbitrary payload index.
struct ParetoPoint {
  std::vector<double> objectives;  ///< one value per objective
  std::size_t payload = 0;         ///< caller-defined id
};

/// Per-objective optimization direction.
enum class Direction { Minimize, Maximize };

/// Returns the indices (into `points`) of the non-dominated set. A point p
/// dominates q when p is no worse in every objective and strictly better in
/// at least one, with "better" defined by `directions` (one per objective).
[[nodiscard]] std::vector<std::size_t> pareto_front(
    std::span<const ParetoPoint> points,
    std::span<const Direction> directions);

/// True when `a` dominates `b` under `directions`.
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b,
                             std::span<const Direction> directions);

}  // namespace muffin::fairness
