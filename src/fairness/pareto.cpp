#include "fairness/pareto.h"

#include "common/error.h"

namespace muffin::fairness {

bool dominates(const ParetoPoint& a, const ParetoPoint& b,
               std::span<const Direction> directions) {
  MUFFIN_REQUIRE(a.objectives.size() == directions.size() &&
                     b.objectives.size() == directions.size(),
                 "objective count must match direction count");
  bool strictly_better = false;
  for (std::size_t d = 0; d < directions.size(); ++d) {
    const double av = a.objectives[d];
    const double bv = b.objectives[d];
    const bool a_better = directions[d] == Direction::Minimize ? av < bv
                                                               : av > bv;
    const bool a_worse = directions[d] == Direction::Minimize ? av > bv
                                                              : av < bv;
    if (a_worse) return false;
    if (a_better) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> pareto_front(std::span<const ParetoPoint> points,
                                      std::span<const Direction> directions) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && dominates(points[j], points[i], directions)) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace muffin::fairness
