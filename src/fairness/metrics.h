// Fairness metrics (paper §3.1).
//
// Accuracy A(f', D) is the fraction of correct classifications. For an
// attribute a_k partitioning D into groups D_1..D_G, the unfairness score is
//   U(f', D)_{a_k} = Σ_g |A(f', D_g) − A(f', D)|        (L1 definition)
// and the multi-dimensional unfairness is U = Σ_k U_{a_k} (Eq. 1).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"

namespace muffin::fairness {

/// Per-attribute fairness breakdown.
struct AttributeFairness {
  std::string attribute;
  std::vector<double> group_accuracy;     ///< A(f', D_g); 0 for empty groups
  std::vector<std::size_t> group_count;   ///< |D_g|
  double unfairness = 0.0;                ///< U(f', D)_{a_k}
};

/// Full fairness evaluation of one model (or fused system) on one dataset.
struct FairnessReport {
  double accuracy = 0.0;
  std::vector<AttributeFairness> attributes;

  /// Multi-dimensional unfairness U = Σ_k U_{a_k} over the attributes in
  /// `names` (all attributes when empty).
  [[nodiscard]] double overall_unfairness(
      std::span<const std::string> names = {}) const;
  [[nodiscard]] const AttributeFairness& for_attribute(
      const std::string& name) const;
  [[nodiscard]] double unfairness_for(const std::string& name) const;
};

/// True labels of a dataset, aligned with record indices.
[[nodiscard]] std::vector<std::size_t> labels(const data::Dataset& dataset);

/// Overall accuracy of a prediction vector.
[[nodiscard]] double accuracy(const data::Dataset& dataset,
                              std::span<const std::size_t> predictions);

/// Unfairness score from per-group accuracies/counts and overall accuracy.
/// Groups with zero count are skipped.
[[nodiscard]] double unfairness_score(std::span<const double> group_accuracy,
                                      std::span<const std::size_t> group_count,
                                      double overall_accuracy);

/// Evaluate a prediction vector on every attribute of the dataset.
[[nodiscard]] FairnessReport evaluate_predictions(
    const data::Dataset& dataset, std::span<const std::size_t> predictions);

/// Prediction-independent group structure of a dataset, precomputed once
/// and reused across many evaluations: per-record labels, per-attribute
/// flat record->group index arrays, and the (static) per-group counts.
/// MuffinSearch builds one per eval split so every candidate-structure
/// episode only accumulates correctness numerators over flat arrays
/// instead of re-walking Record structs and re-counting group membership.
/// Reports are bit-identical to evaluate_predictions(dataset, ...).
struct GroupPartition {
  explicit GroupPartition(const data::Dataset& dataset);

  struct Attribute {
    std::string name;
    std::vector<std::size_t> group_of;     ///< record index -> group index
    std::vector<std::size_t> group_count;  ///< |D_g| (prediction-free)
  };

  std::size_t size = 0;                  ///< record count
  std::vector<std::size_t> labels;       ///< record index -> true label
  std::vector<Attribute> attributes;
};

/// Evaluate a prediction vector against a precomputed partition.
[[nodiscard]] FairnessReport evaluate_predictions(
    const GroupPartition& partition, std::span<const std::size_t> predictions);

/// Evaluate a model (runs predict on every record).
[[nodiscard]] FairnessReport evaluate_model(const models::Model& model,
                                            const data::Dataset& dataset);

/// Relative improvement of an unfairness score: (old − new) / old.
/// Positive = fairer. Returns 0 when old == 0.
[[nodiscard]] double relative_improvement(double old_value, double new_value);

/// Detect unprivileged groups from a report: groups whose accuracy is below
/// the overall accuracy by more than `margin` (used when scenario ground
/// truth is unavailable).
[[nodiscard]] std::vector<std::size_t> detect_unprivileged(
    const AttributeFairness& attribute, double overall_accuracy,
    double margin = 0.0);

}  // namespace muffin::fairness
