#include "fairness/metrics.h"

#include <cmath>

#include "common/error.h"

namespace muffin::fairness {

double FairnessReport::overall_unfairness(
    std::span<const std::string> names) const {
  double total = 0.0;
  if (names.empty()) {
    for (const AttributeFairness& attr : attributes) {
      total += attr.unfairness;
    }
    return total;
  }
  for (const std::string& name : names) {
    total += unfairness_for(name);
  }
  return total;
}

const AttributeFairness& FairnessReport::for_attribute(
    const std::string& name) const {
  for (const AttributeFairness& attr : attributes) {
    if (attr.attribute == name) return attr;
  }
  throw Error("report has no attribute named '" + name + "'");
}

double FairnessReport::unfairness_for(const std::string& name) const {
  return for_attribute(name).unfairness;
}

std::vector<std::size_t> labels(const data::Dataset& dataset) {
  std::vector<std::size_t> out(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out[i] = dataset.record(i).label;
  }
  return out;
}

double accuracy(const data::Dataset& dataset,
                std::span<const std::size_t> predictions) {
  MUFFIN_REQUIRE(predictions.size() == dataset.size(),
                 "prediction count must match dataset size");
  MUFFIN_REQUIRE(dataset.size() > 0, "cannot evaluate an empty dataset");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (predictions[i] == dataset.record(i).label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(dataset.size());
}

double unfairness_score(std::span<const double> group_accuracy,
                        std::span<const std::size_t> group_count,
                        double overall_accuracy) {
  MUFFIN_REQUIRE(group_accuracy.size() == group_count.size(),
                 "group accuracy/count size mismatch");
  double total = 0.0;
  for (std::size_t g = 0; g < group_accuracy.size(); ++g) {
    if (group_count[g] == 0) continue;
    total += std::abs(group_accuracy[g] - overall_accuracy);
  }
  return total;
}

FairnessReport evaluate_predictions(const data::Dataset& dataset,
                                    std::span<const std::size_t> predictions) {
  MUFFIN_REQUIRE(predictions.size() == dataset.size(),
                 "prediction count must match dataset size");
  MUFFIN_REQUIRE(dataset.size() > 0, "cannot evaluate an empty dataset");
  FairnessReport report;
  report.accuracy = accuracy(dataset, predictions);

  const auto& schema = dataset.schema();
  report.attributes.resize(schema.size());
  for (std::size_t a = 0; a < schema.size(); ++a) {
    AttributeFairness& attr = report.attributes[a];
    attr.attribute = schema[a].name;
    attr.group_accuracy.assign(schema[a].group_count(), 0.0);
    attr.group_count.assign(schema[a].group_count(), 0);
  }
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const data::Record& record = dataset.record(i);
    const double correct = predictions[i] == record.label ? 1.0 : 0.0;
    for (std::size_t a = 0; a < schema.size(); ++a) {
      AttributeFairness& attr = report.attributes[a];
      attr.group_accuracy[record.groups[a]] += correct;
      ++attr.group_count[record.groups[a]];
    }
  }
  for (AttributeFairness& attr : report.attributes) {
    for (std::size_t g = 0; g < attr.group_accuracy.size(); ++g) {
      if (attr.group_count[g] > 0) {
        attr.group_accuracy[g] /= static_cast<double>(attr.group_count[g]);
      }
    }
    attr.unfairness = unfairness_score(attr.group_accuracy, attr.group_count,
                                       report.accuracy);
  }
  return report;
}

GroupPartition::GroupPartition(const data::Dataset& dataset) {
  MUFFIN_REQUIRE(dataset.size() > 0, "cannot partition an empty dataset");
  size = dataset.size();
  labels.resize(size);
  const auto& schema = dataset.schema();
  attributes.resize(schema.size());
  for (std::size_t a = 0; a < schema.size(); ++a) {
    attributes[a].name = schema[a].name;
    attributes[a].group_of.resize(size);
    attributes[a].group_count.assign(schema[a].group_count(), 0);
  }
  for (std::size_t i = 0; i < size; ++i) {
    const data::Record& record = dataset.record(i);
    labels[i] = record.label;
    for (std::size_t a = 0; a < schema.size(); ++a) {
      attributes[a].group_of[i] = record.groups[a];
      ++attributes[a].group_count[record.groups[a]];
    }
  }
}

FairnessReport evaluate_predictions(const GroupPartition& partition,
                                    std::span<const std::size_t> predictions) {
  MUFFIN_REQUIRE(predictions.size() == partition.size,
                 "prediction count must match partition size");
  FairnessReport report;

  // Same accumulation order as the Dataset overload (ascending record
  // index, correctness as 0.0/1.0 sums), so reports are bit-identical —
  // only the group membership walk is precomputed away.
  std::size_t correct_total = 0;
  for (std::size_t i = 0; i < partition.size; ++i) {
    if (predictions[i] == partition.labels[i]) ++correct_total;
  }
  report.accuracy = static_cast<double>(correct_total) /
                    static_cast<double>(partition.size);

  report.attributes.resize(partition.attributes.size());
  for (std::size_t a = 0; a < partition.attributes.size(); ++a) {
    const GroupPartition::Attribute& source = partition.attributes[a];
    AttributeFairness& attr = report.attributes[a];
    attr.attribute = source.name;
    attr.group_accuracy.assign(source.group_count.size(), 0.0);
    attr.group_count = source.group_count;
    for (std::size_t i = 0; i < partition.size; ++i) {
      if (predictions[i] == partition.labels[i]) {
        attr.group_accuracy[source.group_of[i]] += 1.0;
      }
    }
    for (std::size_t g = 0; g < attr.group_accuracy.size(); ++g) {
      if (attr.group_count[g] > 0) {
        attr.group_accuracy[g] /= static_cast<double>(attr.group_count[g]);
      }
    }
    attr.unfairness = unfairness_score(attr.group_accuracy, attr.group_count,
                                       report.accuracy);
  }
  return report;
}

FairnessReport evaluate_model(const models::Model& model,
                              const data::Dataset& dataset) {
  return evaluate_predictions(dataset, model.predict_all(dataset));
}

double relative_improvement(double old_value, double new_value) {
  if (old_value == 0.0) return 0.0;
  return (old_value - new_value) / old_value;
}

std::vector<std::size_t> detect_unprivileged(const AttributeFairness& attribute,
                                             double overall_accuracy,
                                             double margin) {
  std::vector<std::size_t> groups;
  for (std::size_t g = 0; g < attribute.group_accuracy.size(); ++g) {
    if (attribute.group_count[g] == 0) continue;
    if (attribute.group_accuracy[g] < overall_accuracy - margin) {
      groups.push_back(g);
    }
  }
  return groups;
}

}  // namespace muffin::fairness
