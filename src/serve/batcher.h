// Micro-batching request queue.
//
// Producers push items; a consumer pops batches. A batch is released as
// soon as `max_batch` items are queued (size flush) or the oldest queued
// item has waited `max_delay` (deadline flush), whichever happens first —
// the classic dynamic-batching throughput/latency trade: larger batches
// amortize per-batch work, the deadline bounds the latency a lone request
// can pay waiting for company.
//
// The queue is thread-safe for any number of producers and consumers;
// close() wakes all consumers, which then drain remaining items and
// finally observe the empty batch that signals termination.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.h"

namespace muffin::serve {

struct BatcherConfig {
  std::size_t max_batch = 32;                 ///< size-flush threshold
  std::chrono::microseconds max_delay{1000};  ///< deadline-flush threshold
};

template <typename T>
class Batcher {
 public:
  explicit Batcher(BatcherConfig config) : config_(config) {
    MUFFIN_REQUIRE(config_.max_batch > 0, "batcher needs max_batch >= 1");
    MUFFIN_REQUIRE(config_.max_delay.count() >= 0,
                   "batcher max_delay must be non-negative");
  }

  /// Enqueue one item. Throws if the batcher is closed.
  void push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      MUFFIN_REQUIRE(!closed_, "cannot push to a closed batcher");
      queue_.emplace_back(std::move(item), Clock::now());
    }
    ready_.notify_one();
  }

  /// Enqueue a group of items atomically: one lock, one enqueue stamp,
  /// one wakeup — all items enter or (if the batcher is closed) none do.
  /// This is the RPC server's path: a decoded request frame's records
  /// enter the engine as a group instead of paying per-record
  /// lock/notify costs.
  void push_many(std::vector<T> items) {
    if (items.empty()) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      MUFFIN_REQUIRE(!closed_, "cannot push to a closed batcher");
      const Clock::time_point now = Clock::now();
      for (T& item : items) {
        queue_.emplace_back(std::move(item), now);
      }
    }
    ready_.notify_all();
  }

  /// Block until a batch is available and return it. An empty vector means
  /// the batcher is closed and fully drained.
  [[nodiscard]] std::vector<T> next_batch() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (queue_.size() >= config_.max_batch || closed_) {
        return pop_locked();
      }
      if (!queue_.empty()) {
        const auto deadline = queue_.front().second + config_.max_delay;
        if (Clock::now() >= deadline) return pop_locked();
        ready_.wait_until(lock, deadline);
      } else {
        ready_.wait(lock);
      }
    }
  }

  /// Stop accepting items; consumers drain the queue then see empty batches.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t pending() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] const BatcherConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Pop up to max_batch items; requires the lock to be held.
  [[nodiscard]] std::vector<T> pop_locked() {
    const std::size_t n = std::min(queue_.size(), config_.max_batch);
    std::vector<T> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front().first));
      queue_.pop_front();
    }
    return batch;
  }

  BatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::pair<T, Clock::time_point>> queue_;
  bool closed_ = false;
};

}  // namespace muffin::serve
