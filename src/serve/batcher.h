// Micro-batching request queue.
//
// Producers push items; a consumer pops batches. A batch is released as
// soon as `max_batch` items are queued (size flush) or the oldest queued
// item has waited `max_delay` (deadline flush), whichever happens first —
// the classic dynamic-batching throughput/latency trade: larger batches
// amortize per-batch work, the deadline bounds the latency a lone request
// can pay waiting for company.
//
// The queue is thread-safe for any number of producers and consumers;
// close() wakes all consumers, which then drain remaining items and
// finally observe the empty batch that signals termination.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"

namespace muffin::serve {

struct BatcherConfig {
  std::size_t max_batch = 32;                 ///< size-flush threshold
  std::chrono::microseconds max_delay{1000};  ///< deadline-flush threshold
  /// Admission bound: push/push_many throw muffin::Overloaded once the
  /// queue holds this many items (0 = unbounded). The shed happens at
  /// enqueue — a full queue is reported in microseconds, instead of the
  /// request timing out deep in the scoring stack.
  std::size_t max_queue = 0;
  /// Registry prefix for the batcher's flush accounting
  /// (`<prefix>.size_flushes` / `.deadline_flushes` / `.drain_flushes`)
  /// and queue-depth gauge (`<prefix>.depth`). Empty disables
  /// registration, for throwaway batchers that must not touch the
  /// process registry.
  std::string metrics_prefix = "batcher";
};

template <typename T>
class Batcher {
 public:
  explicit Batcher(BatcherConfig config) : config_(std::move(config)) {
    MUFFIN_REQUIRE(config_.max_batch > 0, "batcher needs max_batch >= 1");
    MUFFIN_REQUIRE(config_.max_delay.count() >= 0,
                   "batcher max_delay must be non-negative");
    if (!config_.metrics_prefix.empty()) {
      obs::Registry& registry = obs::registry();
      const std::string& prefix = config_.metrics_prefix;
      size_flushes_ = &registry.counter(prefix + ".size_flushes");
      deadline_flushes_ = &registry.counter(prefix + ".deadline_flushes");
      drain_flushes_ = &registry.counter(prefix + ".drain_flushes");
      depth_ = &registry.gauge(prefix + ".depth");
    }
  }

  /// Enqueue one item. Throws muffin::Error if the batcher is closed,
  /// muffin::Overloaded if the admission bound is reached.
  void push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      MUFFIN_REQUIRE(!closed_, "cannot push to a closed batcher");
      admit_locked(1);
      queue_.emplace_back(std::move(item), Clock::now());
      publish_depth_locked();
    }
    ready_.notify_one();
  }

  /// Enqueue a group of items atomically: one lock, one enqueue stamp,
  /// one wakeup — all items enter or (if the batcher is closed) none do.
  /// This is the RPC server's path: a decoded request frame's records
  /// enter the engine as a group instead of paying per-record
  /// lock/notify costs.
  void push_many(std::vector<T> items) {
    if (items.empty()) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      MUFFIN_REQUIRE(!closed_, "cannot push to a closed batcher");
      admit_locked(items.size());
      const Clock::time_point now = Clock::now();
      for (T& item : items) {
        queue_.emplace_back(std::move(item), now);
      }
      publish_depth_locked();
    }
    ready_.notify_all();
  }

  /// Block until a batch is available and return it. An empty vector means
  /// the batcher is closed and fully drained.
  [[nodiscard]] std::vector<T> next_batch() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (queue_.size() >= config_.max_batch) {
        return pop_locked(size_flushes_);
      }
      if (closed_) {
        return pop_locked(drain_flushes_);
      }
      if (!queue_.empty()) {
        const auto deadline = queue_.front().second + config_.max_delay;
        if (Clock::now() >= deadline) return pop_locked(deadline_flushes_);
        ready_.wait_until(lock, deadline);
      } else {
        ready_.wait(lock);
      }
    }
  }

  /// Stop accepting items; consumers drain the queue then see empty batches.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t pending() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] const BatcherConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Pop up to max_batch items; requires the lock to be held. `cause`
  /// is the flush-cause counter to credit (null when metrics are off);
  /// the empty batch that signals a drained-and-closed queue is not a
  /// flush and is never counted.
  [[nodiscard]] std::vector<T> pop_locked(obs::Counter* cause) {
    const std::size_t n = std::min(queue_.size(), config_.max_batch);
    std::vector<T> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front().first));
      queue_.pop_front();
    }
    if (n > 0 && cause != nullptr) cause->inc();
    publish_depth_locked();
    return batch;
  }

  /// All-or-nothing admission check for `n` incoming items; requires the
  /// lock to be held. A group is shed whole — partially admitting a
  /// frame's records would break the all-or-error batch contract.
  void admit_locked(std::size_t n) const {
    if (config_.max_queue != 0 && queue_.size() + n > config_.max_queue) {
      throw Overloaded("batcher queue full (" + std::to_string(queue_.size()) +
                       " of " + std::to_string(config_.max_queue) +
                       " queued): request shed");
    }
  }

  void publish_depth_locked() {
    if (depth_ != nullptr) {
      depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
  }

  BatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::pair<T, Clock::time_point>> queue_;
  bool closed_ = false;
  obs::Counter* size_flushes_ = nullptr;
  obs::Counter* deadline_flushes_ = nullptr;
  obs::Counter* drain_flushes_ = nullptr;
  obs::Gauge* depth_ = nullptr;
};

}  // namespace muffin::serve
