// Online head retraining: close the loop from live traffic back into
// the serving model, through the same hot-swap path operators use.
//
// The body models stay frozen in serving exactly as they do offline —
// only the muffin head is retrained (core/head_trainer.h), so a retrain
// round is cheap enough to run beside live traffic. The pieces:
//
//  * **LabelBuffer** — a bounded ring of recently served, labelled
//    records. The serving edge pushes every record whose ground-truth
//    label it learns (delayed feedback, audit samples, ...); the ring
//    keeps the most recent `capacity` and drops the oldest, so the
//    training set tracks the live distribution with O(capacity) memory.
//  * **HeadRetrainer** — one retrain round: snapshot the buffer into a
//    Dataset (schema and unprivileged-group metadata copied from the
//    serving dataset), rebuild the body score cache over it, train a
//    fresh head on the fairness proxy (Algorithm 1 weights, Eq. 2 loss
//    — the same trainer the offline search uses), and publish the new
//    fused model through InferenceEngine::swap_model. Publication is
//    version-checked: if the engine's model advanced while the round
//    was training (an operator rollout won the race), the stale round
//    is discarded instead of clobbering the newer model.
//
// A round that cannot run (buffer below min_records, no unprivileged
// records for the proxy, lost race) returns version 0 and changes
// nothing; the caller just tries again after more traffic. Rounds are
// counted on the "serve.retrain_rounds" counter (published rounds only).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/head_trainer.h"
#include "core/proxy.h"
#include "data/dataset.h"
#include "serve/engine.h"

namespace muffin::serve {

/// Bounded ring of labelled recent-traffic records. Thread-safe: the
/// serving edge pushes concurrently with retrain-round snapshots.
class LabelBuffer {
 public:
  explicit LabelBuffer(std::size_t capacity);

  /// Record one labelled sample; the oldest is dropped at capacity.
  void push(const data::Record& record);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Lifetime pushes (so tests can assert drops: pushed() - size()).
  [[nodiscard]] std::size_t pushed() const;

  /// Copy the current contents, oldest first.
  [[nodiscard]] std::vector<data::Record> snapshot() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<data::Record> ring_;
  std::size_t pushed_ = 0;
};

struct RetrainConfig {
  /// A round is skipped (returns 0) below this many buffered records —
  /// retraining a head on a handful of samples would publish noise.
  std::size_t min_records = 256;
  core::HeadTrainConfig train;    ///< head-trainer knobs for each round
  core::ProxyConfig proxy;        ///< fairness-proxy construction knobs
};

/// Drives retrain rounds against one engine. Holds no thread of its
/// own: callers decide the cadence (a timer, a buffer-size trigger, a
/// CLI flag) and invoke run_round; the round itself trains on the
/// calling thread while the engine keeps serving.
class HeadRetrainer {
 public:
  /// `reference` supplies the dataset schema, class count and
  /// unprivileged-group metadata the buffered records are interpreted
  /// under (copied at construction; the dataset itself is not kept).
  HeadRetrainer(InferenceEngine& engine, const data::Dataset& reference,
                RetrainConfig config = {});

  /// One round: snapshot -> score -> train -> swap. Returns the
  /// installed model version, or 0 when the round was skipped (buffer
  /// too small, empty fairness proxy) or lost a publish race.
  std::uint64_t run_round(const LabelBuffer& buffer);

  /// Rounds that published a new version through this retrainer.
  [[nodiscard]] std::size_t rounds_published() const {
    return rounds_published_;
  }

 private:
  InferenceEngine& engine_;
  RetrainConfig config_;
  // Schema template for snapshot datasets (records cleared per round).
  std::string dataset_name_;
  std::size_t num_classes_;
  std::vector<data::AttributeSchema> schema_;
  std::vector<std::vector<bool>> unprivileged_;
  std::size_t rounds_published_ = 0;
};

}  // namespace muffin::serve
