#include "serve/router.h"

#include "common/error.h"

namespace muffin::serve {

ShardRouter::ShardRouter(std::shared_ptr<const core::FusedModel> model,
                         RouterConfig config)
    : model_(std::move(model)),
      config_(config),
      ring_(config.virtual_nodes) {
  MUFFIN_REQUIRE(model_ != nullptr, "router needs a fused model");
  MUFFIN_REQUIRE(config_.shards > 0, "router needs at least one shard");
  for (std::size_t s = 0; s < config_.shards; ++s) {
    (void)add_replica_locked();  // construction is single-threaded
  }
}

ShardRouter::~ShardRouter() { shutdown(); }

std::future<Prediction> ShardRouter::submit(const data::Record& record) {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot submit to a stopped router");
  Replica& replica = *replicas_[ring_.node_for(record.uid)];
  replica.routed.fetch_add(1, std::memory_order_relaxed);
  return replica.engine->submit(record);
}

Prediction ShardRouter::predict(const data::Record& record) {
  return submit(record).get();
}

std::vector<Prediction> ShardRouter::predict_batch(
    std::span<const data::Record> records) {
  std::vector<std::future<Prediction>> futures;
  futures.reserve(records.size());
  for (const data::Record& record : records) {
    futures.push_back(submit(record));
  }
  std::vector<Prediction> predictions;
  predictions.reserve(records.size());
  for (std::future<Prediction>& future : futures) {
    predictions.push_back(future.get());
  }
  return predictions;
}

void ShardRouter::shutdown() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  if (stopped_) return;
  stopped_ = true;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    if (replica->state != State::Removed) replica->engine->shutdown();
  }
}

std::size_t ShardRouter::shard_for(std::uint64_t uid) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "shard_for on a stopped router");
  return static_cast<std::size_t>(ring_.node_for(uid));
}

std::size_t ShardRouter::add_replica() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot add a replica to a stopped router");
  return add_replica_locked();
}

std::size_t ShardRouter::add_replica_locked() {
  const std::size_t shard = replicas_.size();
  auto replica = std::make_unique<Replica>();
  replica->engine =
      std::make_unique<InferenceEngine>(model_, config_.engine);
  replicas_.push_back(std::move(replica));
  ring_.add(static_cast<std::uint64_t>(shard));
  return shard;
}

void ShardRouter::drain(std::size_t shard) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot drain on a stopped router");
  Replica& replica = checked_locked(shard);
  MUFFIN_REQUIRE(replica.state == State::Active,
                 "can only drain an active replica");
  MUFFIN_REQUIRE(active_count_locked() > 1,
                 "cannot drain the last active replica");
  ring_.remove(static_cast<std::uint64_t>(shard));
  replica.state = State::Drained;
}

void ShardRouter::restore(std::size_t shard) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot restore on a stopped router");
  Replica& replica = checked_locked(shard);
  MUFFIN_REQUIRE(replica.state == State::Drained,
                 "can only restore a drained replica");
  ring_.add(static_cast<std::uint64_t>(shard));
  replica.state = State::Active;
}

void ShardRouter::remove_replica(std::size_t shard) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot remove a replica on a stopped router");
  Replica& replica = checked_locked(shard);
  MUFFIN_REQUIRE(replica.state != State::Removed,
                 "replica is already removed");
  if (replica.state == State::Active) {
    MUFFIN_REQUIRE(active_count_locked() > 1,
                   "cannot remove the last active replica");
    ring_.remove(static_cast<std::uint64_t>(shard));
  }
  replica.state = State::Removed;
  // Holding the exclusive lock here is what makes removal safe: no
  // submitter can be between routing and engine->submit while the engine
  // stops. In-flight batches complete on the engine's own pool.
  replica.engine->shutdown();
}

std::size_t ShardRouter::replica_count() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return replicas_.size();
}

std::size_t ShardRouter::active_count() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_count_locked();
}

bool ShardRouter::active(std::size_t shard) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return checked_locked(shard).state == State::Active;
}

const InferenceEngine& ShardRouter::replica(std::size_t shard) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return *checked_locked(shard).engine;
}

LatencyStats::Snapshot ShardRouter::aggregate_latency() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  LatencyStats merged;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    merged.merge(replica->engine->latency());
  }
  return merged.snapshot();
}

EngineCounters ShardRouter::aggregate_counters() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  EngineCounters total;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    const EngineCounters c = replica->engine->counters();
    total.requests += c.requests;
    total.batches += c.batches;
    total.cache_hits += c.cache_hits;
    total.consensus_short_circuits += c.consensus_short_circuits;
    total.head_evaluations += c.head_evaluations;
  }
  return total;
}

std::vector<ShardInfo> ShardRouter::shard_infos() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<ShardInfo> infos;
  infos.reserve(replicas_.size());
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    const Replica& replica = *replicas_[s];
    ShardInfo info;
    info.shard = s;
    info.active = replica.state == State::Active;
    info.alive = replica.state != State::Removed;
    info.routed = replica.routed.load(std::memory_order_relaxed);
    info.cache_entries = replica.engine->cache_entries();
    info.counters = replica.engine->counters();
    info.latency = replica.engine->latency().snapshot();
    infos.push_back(std::move(info));
  }
  return infos;
}

ShardRouter::Replica& ShardRouter::checked_locked(std::size_t shard) const {
  MUFFIN_REQUIRE(shard < replicas_.size(), "shard id out of range");
  return *replicas_[shard];
}

std::size_t ShardRouter::active_count_locked() const {
  std::size_t active = 0;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    if (replica->state == State::Active) ++active;
  }
  return active;
}

}  // namespace muffin::serve
