#include "serve/router.h"

#include <algorithm>

#include "common/error.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace muffin::serve {

namespace {

/// Routing-tier metrics, resolved once per process.
struct RouterMetrics {
  obs::Counter& routed = obs::registry().counter("router.routed");
  obs::Counter& submit_failures =
      obs::registry().counter("router.submit_failures");
  obs::Counter& probe_failures =
      obs::registry().counter("router.probe_failures");
  obs::Counter& auto_drains = obs::registry().counter("router.auto_drains");
  obs::Counter& auto_restores =
      obs::registry().counter("router.auto_restores");
  obs::Counter& retries = obs::registry().counter("serve.retries");
  obs::Counter& failovers = obs::registry().counter("serve.failovers");
  obs::Counter& retry_budget_exhausted =
      obs::registry().counter("serve.retry_budget_exhausted");

  static RouterMetrics& get() {
    static RouterMetrics metrics;
    return metrics;
  }
};

/// "No shard chosen": the retry loop uses this to tell a routing failure
/// (nothing to avoid) from a submit failure on a concrete shard.
constexpr std::uint64_t kNoShard = ~std::uint64_t{0};

}  // namespace

ShardRouter::ShardRouter(std::shared_ptr<const core::FusedModel> model,
                         RouterConfig config)
    : model_(std::move(model)),
      config_(std::move(config)),
      ring_(config_.virtual_nodes) {
  MUFFIN_REQUIRE(model_ != nullptr || config_.shards == 0,
                 "router needs a fused model for local replicas");
  MUFFIN_REQUIRE(config_.shards + config_.remote_endpoints.size() > 0,
                 "router needs at least one shard");
  // The bank starts full so failover works from a cold start — the first
  // failure a router ever sees is often the one it was deployed to mask.
  retry_tokens_millis_.store(
      static_cast<std::int64_t>(config_.retry.budget_burst) * 1000,
      std::memory_order_relaxed);
  // Construction is single-threaded; the _locked helpers are safe here.
  for (std::size_t s = 0; s < config_.shards; ++s) {
    (void)add_local_replica_locked();
  }
  for (const std::string& endpoint : config_.remote_endpoints) {
    (void)add_backend_locked(
        std::make_shared<rpc::RemoteShard>(endpoint, config_.remote),
        /*is_remote=*/true);
  }
  ensure_monitor_locked();
}

ShardRouter::~ShardRouter() { shutdown(); }

std::future<Prediction> ShardRouter::submit(const data::Record& record) {
  if (config_.retry.max_attempts <= 1) {
    return submit_routed(record, {}, nullptr);
  }
  // Retries on. The first attempt still goes out EAGERLY so batching and
  // pipelining behave exactly as in the no-retry path; only the retry
  // driver is deferred to future-resolution time, because a dead remote
  // shard fails at response time, not submit time — the failure we must
  // fail over from does not exist yet when submit() returns.
  std::uint64_t first_shard = kNoShard;
  std::future<Prediction> first;
  std::exception_ptr first_error;
  try {
    first = submit_routed(record, {}, &first_shard);
  } catch (const Overloaded&) {
    throw;  // shed is a capacity signal, never retried
  } catch (...) {
    first_error = std::current_exception();
  }
  return std::async(std::launch::deferred,
                    [this, record, first = std::move(first), first_shard,
                     first_error]() mutable {
                      return submit_with_retries(std::move(record),
                                                 std::move(first),
                                                 first_shard, first_error);
                    });
}

std::future<Prediction> ShardRouter::submit_routed(
    const data::Record& record, const std::vector<std::uint64_t>& avoid,
    std::uint64_t* shard_out) {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot submit to a stopped router");
  std::uint64_t shard = 0;
  if (avoid.empty()) {
    shard = ring_.node_for(record.uid);
  } else {
    const std::optional<std::uint64_t> candidate =
        ring_.node_for_excluding(record.uid, avoid);
    MUFFIN_REQUIRE(candidate.has_value(),
                   "no healthy replica left to fail over to");
    shard = *candidate;
  }
  if (shard_out != nullptr) *shard_out = shard;
  Replica& replica = *replicas_[shard];
  std::future<Prediction> future;
  try {
    fail::maybe_fail("serve.router.submit");
    future = replica.backend->submit(record);
  } catch (...) {
    RouterMetrics::get().submit_failures.inc();
    throw;
  }
  // Count only after a successful enqueue: a submit that throws (e.g. a
  // backend racing shutdown) never reached the shard, and `routed` feeds
  // capacity decisions — overcounting failed submits would skew them.
  replica.routed.fetch_add(1, std::memory_order_relaxed);
  RouterMetrics::get().routed.inc();
  if (config_.retry.max_attempts > 1) earn_retry_token();
  return future;
}

Prediction ShardRouter::submit_with_retries(data::Record record,
                                            std::future<Prediction> first,
                                            std::uint64_t first_shard,
                                            std::exception_ptr first_error) {
  std::exception_ptr last_error = first_error;
  if (!last_error) {
    try {
      return first.get();
    } catch (const Overloaded&) {
      throw;  // never retry a shed — it would defeat the load shedding
    } catch (...) {
      last_error = std::current_exception();
    }
  }
  RouterMetrics& metrics = RouterMetrics::get();
  std::vector<std::uint64_t> avoid;
  if (first_shard != kNoShard) avoid.push_back(first_shard);
  for (std::size_t attempt = 1; attempt < config_.retry.max_attempts;
       ++attempt) {
    if (!try_take_retry_token()) break;  // budget dry: fail fast, no storm
    metrics.retries.inc();
    std::uint64_t shard = kNoShard;
    std::future<Prediction> future;
    try {
      future = submit_routed(record, avoid, &shard);
    } catch (const Overloaded&) {
      throw;
    } catch (...) {
      if (shard == kNoShard) {
        // Routing itself failed. With an empty avoid list there is
        // genuinely nowhere to go (stopped router); otherwise transient
        // faults have blacklisted every replica — give later attempts
        // the full ring back rather than giving up early. Either way
        // keep the real (submit-time) error for the caller.
        if (avoid.empty()) break;
        avoid.clear();
      } else {
        last_error = std::current_exception();
        avoid.push_back(shard);
      }
      continue;
    }
    if (shard != first_shard) metrics.failovers.inc();
    try {
      return future.get();
    } catch (const Overloaded&) {
      throw;
    } catch (...) {
      last_error = std::current_exception();
      avoid.push_back(shard);
    }
  }
  std::rethrow_exception(last_error);
}

bool ShardRouter::try_take_retry_token() {
  std::int64_t balance = retry_tokens_millis_.load(std::memory_order_relaxed);
  while (balance >= 1000) {
    if (retry_tokens_millis_.compare_exchange_weak(
            balance, balance - 1000, std::memory_order_relaxed)) {
      return true;
    }
  }
  RouterMetrics::get().retry_budget_exhausted.inc();
  return false;
}

void ShardRouter::earn_retry_token() {
  const auto earn =
      static_cast<std::int64_t>(config_.retry.budget_ratio * 1000.0);
  if (earn <= 0) return;
  const std::int64_t cap =
      static_cast<std::int64_t>(config_.retry.budget_burst) * 1000;
  std::int64_t balance = retry_tokens_millis_.load(std::memory_order_relaxed);
  while (balance < cap &&
         !retry_tokens_millis_.compare_exchange_weak(
             balance, std::min(cap, balance + earn),
             std::memory_order_relaxed)) {
  }
}

Prediction ShardRouter::predict(const data::Record& record) {
  return submit(record).get();
}

std::vector<Prediction> ShardRouter::predict_batch(
    std::span<const data::Record> records) {
  std::vector<std::future<Prediction>> futures;
  futures.reserve(records.size());
  for (const data::Record& record : records) {
    try {
      futures.push_back(submit(record));
    } catch (...) {
      // All-or-error: quiesce the already-submitted prefix before the
      // failure propagates. Waiting (not abandoning) is what guarantees
      // no request of this call is still in flight when the caller sees
      // the exception — the rule the RPC client and server share.
      for (std::future<Prediction>& future : futures) {
        future.wait();
      }
      throw;
    }
  }
  return collect_all_or_error(std::move(futures));
}

void ShardRouter::shutdown() {
  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Stop the health monitor first so no probe or drain transition races
  // the backend shutdowns below.
  {
    const std::lock_guard<std::mutex> lock(monitor_mutex_);
    monitor_stop_ = true;
  }
  monitor_wake_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  // Collect the live backends under the lock, stop them outside it:
  // stopping a remote shard can block up to its request-timeout grace
  // while it drains, and stats readers should not stall behind that.
  // New submits are already rejected (stopped_ is set above).
  std::vector<std::shared_ptr<ReplicaBackend>> backends;
  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    for (const std::unique_ptr<Replica>& replica : replicas_) {
      if (replica->state != State::Removed) {
        backends.push_back(replica->backend);
      }
    }
  }
  for (const std::shared_ptr<ReplicaBackend>& backend : backends) {
    backend->shutdown();
  }
}

std::size_t ShardRouter::shard_for(std::uint64_t uid) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "shard_for on a stopped router");
  return static_cast<std::size_t>(ring_.node_for(uid));
}

std::size_t ShardRouter::add_replica() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot add a replica to a stopped router");
  return add_local_replica_locked();
}

std::size_t ShardRouter::add_remote_replica(const std::string& endpoint) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot add a replica to a stopped router");
  const std::size_t shard = add_backend_locked(
      std::make_shared<rpc::RemoteShard>(endpoint, config_.remote),
      /*is_remote=*/true);
  ensure_monitor_locked();
  return shard;
}

std::size_t ShardRouter::add_local_replica_locked() {
  MUFFIN_REQUIRE(model_ != nullptr,
                 "router was built without a model; only remote replicas "
                 "can be added");
  return add_backend_locked(
      std::make_shared<LocalReplica>(model_, config_.engine),
      /*is_remote=*/false);
}

std::size_t ShardRouter::add_backend_locked(
    std::shared_ptr<ReplicaBackend> backend, bool is_remote) {
  const std::size_t shard = replicas_.size();
  auto replica = std::make_unique<Replica>();
  replica->describe = backend->describe();
  replica->is_remote = is_remote;
  replica->backend = std::move(backend);
  replicas_.push_back(std::move(replica));
  ring_.add(static_cast<std::uint64_t>(shard));
  return shard;
}

void ShardRouter::drain(std::size_t shard) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot drain on a stopped router");
  Replica& replica = checked_locked(shard);
  drain_locked(replica, shard, /*automatic=*/false);
}

void ShardRouter::drain_locked(Replica& replica, std::size_t shard,
                               bool automatic) {
  MUFFIN_REQUIRE(replica.state == State::Active,
                 "can only drain an active replica");
  MUFFIN_REQUIRE(active_count_locked() > 1,
                 "cannot drain the last active replica");
  ring_.remove(static_cast<std::uint64_t>(shard));
  replica.state = State::Drained;
  replica.auto_drained = automatic;
  replica.probe_successes = 0;
}

void ShardRouter::restore(std::size_t shard) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  MUFFIN_REQUIRE(!stopped_, "cannot restore on a stopped router");
  Replica& replica = checked_locked(shard);
  MUFFIN_REQUIRE(replica.state == State::Drained,
                 "can only restore a drained replica");
  restore_locked(replica, shard);
}

void ShardRouter::restore_locked(Replica& replica, std::size_t shard) {
  ring_.add(static_cast<std::uint64_t>(shard));
  replica.state = State::Active;
  replica.auto_drained = false;
  replica.probe_failures = 0;
  replica.probe_successes = 0;
  // A restored shard starts with a clean failure history; stale counts
  // would re-drain it on the monitor's next pass.
  replica.backend->reset_failures();
}

void ShardRouter::remove_replica(std::size_t shard) {
  std::shared_ptr<ReplicaBackend> retired;
  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    MUFFIN_REQUIRE(!stopped_, "cannot remove a replica on a stopped router");
    Replica& replica = checked_locked(shard);
    MUFFIN_REQUIRE(replica.state != State::Removed,
                   "replica is already removed");
    if (replica.state == State::Active) {
      MUFFIN_REQUIRE(active_count_locked() > 1,
                     "cannot remove the last active replica");
      ring_.remove(static_cast<std::uint64_t>(shard));
    }
    // Freeze-at-removal, preliminary: snapshot every stat the aggregates
    // and operator tables consume so observers never touch a retiring
    // backend. Refined below once the drain completes.
    replica.frozen_counters = replica.backend->counters();
    replica.frozen_latency = std::make_unique<LatencyStats>();
    replica.frozen_latency->merge(replica.backend->latency());
    replica.frozen_cache_entries = replica.backend->cache_entries();
    replica.state = State::Removed;
    retired = std::move(replica.backend);
  }
  // The exclusive section above is what makes removal safe: no submitter
  // can be between routing and backend->submit once the shard is off the
  // ring and its backend pointer cleared. The (possibly slow) stop runs
  // OUTSIDE the lock — draining a remote shard can block up to its
  // request-timeout grace, and routing must not stall behind it. The
  // health monitor holds its own shared_ptr, so a probe in flight
  // during removal finishes against a live (stopping) object.
  retired->shutdown();
  // Final freeze: the drain above let in-flight requests complete and
  // record their latency AFTER the preliminary snapshot. Re-snapshot the
  // quiesced backend so the frozen view is internally consistent (every
  // counted request also has its latency) before the backend dies.
  {
    const std::unique_lock<std::shared_mutex> lock(mutex_);
    Replica& replica = *replicas_[shard];
    replica.frozen_counters = retired->counters();
    replica.frozen_latency = std::make_unique<LatencyStats>();
    replica.frozen_latency->merge(retired->latency());
    replica.frozen_cache_entries = retired->cache_entries();
  }
}

std::size_t ShardRouter::replica_count() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return replicas_.size();
}

std::size_t ShardRouter::active_count() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_count_locked();
}

bool ShardRouter::active(std::size_t shard) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return checked_locked(shard).state == State::Active;
}

const InferenceEngine& ShardRouter::replica(std::size_t shard) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const Replica& replica = checked_locked(shard);
  MUFFIN_REQUIRE(replica.state != State::Removed,
                 "replica was removed; its backend is retired");
  const InferenceEngine* engine = replica.backend->engine();
  MUFFIN_REQUIRE(engine != nullptr,
                 "replica is remote; it has no in-process engine");
  return *engine;
}

LatencyStats::Snapshot ShardRouter::aggregate_latency() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  LatencyStats merged;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    if (replica->state == State::Removed) {
      merged.merge(*replica->frozen_latency);
    } else {
      merged.merge(replica->backend->latency());
    }
  }
  return merged.snapshot();
}

EngineCounters ShardRouter::aggregate_counters() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  EngineCounters total;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    const EngineCounters c = replica->state == State::Removed
                                 ? replica->frozen_counters
                                 : replica->backend->counters();
    total.requests += c.requests;
    total.batches += c.batches;
    total.cache_hits += c.cache_hits;
    total.consensus_short_circuits += c.consensus_short_circuits;
    total.head_evaluations += c.head_evaluations;
  }
  return total;
}

StatsReport ShardRouter::authoritative_stats() const {
  StatsReport total;
  LatencyStats merged;
  // Phase 1 (shared lock): fold the frozen snapshots of removed replicas
  // and collect live backends. shared_ptrs keep backends alive across
  // the unlocked fetches even if a replica is removed meanwhile (the
  // freeze-at-removal rule covers the router's own view; our extra fetch
  // against a stopping backend is safe, merely possibly refused).
  std::vector<std::shared_ptr<ReplicaBackend>> backends;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const std::unique_ptr<Replica>& replica : replicas_) {
      if (replica->state == State::Removed) {
        const EngineCounters& c = replica->frozen_counters;
        total.counters.requests += c.requests;
        total.counters.batches += c.batches;
        total.counters.cache_hits += c.cache_hits;
        total.counters.consensus_short_circuits += c.consensus_short_circuits;
        total.counters.head_evaluations += c.head_evaluations;
        total.cache_entries += replica->frozen_cache_entries;
        merged.merge(*replica->frozen_latency);
      } else {
        backends.push_back(replica->backend);
      }
    }
  }
  // Phase 2 (no locks): fetch. Remote fetches may block up to their
  // connect/request deadlines; routing stays live meanwhile.
  for (const std::shared_ptr<ReplicaBackend>& backend : backends) {
    if (std::optional<StatsReport> report = backend->authoritative_stats()) {
      const EngineCounters& c = report->counters;
      total.counters.requests += c.requests;
      total.counters.batches += c.batches;
      total.counters.cache_hits += c.cache_hits;
      total.counters.consensus_short_circuits += c.consensus_short_circuits;
      total.counters.head_evaluations += c.head_evaluations;
      total.cache_entries += report->cache_entries;
      merged.merge_export(report->latency);
    } else {
      // Unreachable (or pre-Stats) remote: degrade to this client's
      // observed accounting rather than dropping the shard's traffic
      // from the aggregate.
      const EngineCounters c = backend->counters();
      total.counters.requests += c.requests;
      total.counters.batches += c.batches;
      total.counters.cache_hits += c.cache_hits;
      total.counters.consensus_short_circuits += c.consensus_short_circuits;
      total.counters.head_evaluations += c.head_evaluations;
      total.cache_entries += backend->cache_entries();
      merged.merge(backend->latency());
    }
  }
  total.latency = merged.to_export();
  total.metrics = obs::registry().snapshot();
  return total;
}

std::uint64_t ShardRouter::reload_shard(std::size_t shard,
                                        const std::string& artifact_path) {
  // Grab the backend under the shared lock, reload off the locks: a
  // remote reload blocks on the network up to its request deadline, and
  // routing (including to this very shard) must stay live meanwhile —
  // that is the whole point of the zero-downtime swap.
  std::shared_ptr<ReplicaBackend> backend;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    MUFFIN_REQUIRE(!stopped_, "router is stopped");
    Replica& replica = checked_locked(shard);
    MUFFIN_REQUIRE(replica.state != State::Removed,
                   "cannot reload a removed shard");
    backend = replica.backend;
  }
  return backend->reload(artifact_path);
}

std::vector<std::uint64_t> ShardRouter::reload_all(
    const std::string& artifact_path) {
  std::size_t count;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    MUFFIN_REQUIRE(!stopped_, "router is stopped");
    count = replicas_.size();
  }
  std::vector<std::uint64_t> versions(count, 0);
  for (std::size_t shard = 0; shard < count; ++shard) {
    {
      const std::shared_lock<std::shared_mutex> lock(mutex_);
      if (shard < replicas_.size() &&
          replicas_[shard]->state == State::Removed) {
        continue;  // retired mid-roll (or before): nothing to reload
      }
    }
    versions[shard] = reload_shard(shard, artifact_path);
  }
  return versions;
}

std::vector<ShardInfo> ShardRouter::shard_infos() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<ShardInfo> infos;
  infos.reserve(replicas_.size());
  for (std::size_t s = 0; s < replicas_.size(); ++s) {
    const Replica& replica = *replicas_[s];
    ShardInfo info;
    info.shard = s;
    info.active = replica.state == State::Active;
    info.alive = replica.state != State::Removed;
    info.remote = replica.is_remote;
    info.auto_drained = replica.auto_drained;
    info.backend = replica.describe;
    info.routed = replica.routed.load(std::memory_order_relaxed);
    if (replica.state == State::Removed) {
      info.cache_entries = replica.frozen_cache_entries;
      info.counters = replica.frozen_counters;
      info.latency = replica.frozen_latency->snapshot();
    } else {
      info.cache_entries = replica.backend->cache_entries();
      info.counters = replica.backend->counters();
      info.latency = replica.backend->latency().snapshot();
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

ShardRouter::Replica& ShardRouter::checked_locked(std::size_t shard) const {
  MUFFIN_REQUIRE(shard < replicas_.size(), "shard id out of range");
  return *replicas_[shard];
}

std::size_t ShardRouter::active_count_locked() const {
  std::size_t active = 0;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    if (replica->state == State::Active) ++active;
  }
  return active;
}

void ShardRouter::ensure_monitor_locked() {
  if (monitor_.joinable()) return;
  if (config_.health.probe_interval.count() == 0) return;
  const bool any_remote =
      std::any_of(replicas_.begin(), replicas_.end(),
                  [](const std::unique_ptr<Replica>& replica) {
                    return replica->is_remote;
                  });
  if (!any_remote) return;
  monitor_ = std::thread([this]() { health_loop(); });
}

void ShardRouter::health_loop() {
  struct ProbeTarget {
    std::size_t shard = 0;
    std::shared_ptr<ReplicaBackend> backend;
    bool was_active = false;
    bool was_auto_drained = false;
    std::size_t submit_failures = 0;
    bool probe_ok = false;
  };
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(monitor_mutex_);
      monitor_wake_.wait_for(lock, config_.health.probe_interval,
                             [this]() { return monitor_stop_; });
      if (monitor_stop_) return;
    }

    // Phase 1 (shared lock): snapshot who to probe. Backend shared_ptrs
    // keep the objects alive even if a replica is removed mid-probe.
    std::vector<ProbeTarget> targets;
    {
      const std::shared_lock<std::shared_mutex> lock(mutex_);
      if (stopped_) return;
      for (std::size_t s = 0; s < replicas_.size(); ++s) {
        const Replica& replica = *replicas_[s];
        if (!replica.is_remote || replica.state == State::Removed) continue;
        if (replica.state == State::Drained && !replica.auto_drained) {
          continue;  // operator drains are out of the monitor's hands
        }
        ProbeTarget target;
        target.shard = s;
        target.backend = replica.backend;
        target.was_active = replica.state == State::Active;
        target.was_auto_drained = replica.auto_drained;
        // Read BEFORE probing: a successful probe resets the backend's
        // failure count, which would erase the submit-timeout signal.
        target.submit_failures = replica.backend->consecutive_failures();
        targets.push_back(std::move(target));
      }
    }

    // Phase 2 (no locks): probe. Each probe may block up to its connect
    // and probe deadlines; holding no router lock keeps serving live.
    for (ProbeTarget& target : targets) {
      target.probe_ok = target.backend->probe();
      if (!target.probe_ok) RouterMetrics::get().probe_failures.inc();
    }

    // Phase 3 (exclusive lock): apply transitions, revalidating state —
    // an operator may have drained/restored/removed the shard meanwhile.
    {
      const std::unique_lock<std::shared_mutex> lock(mutex_);
      if (stopped_) return;
      for (const ProbeTarget& target : targets) {
        Replica& replica = *replicas_[target.shard];
        if (replica.state == State::Removed) continue;
        if (replica.state == State::Active && target.was_active) {
          replica.probe_failures =
              target.probe_ok ? 0 : replica.probe_failures + 1;
          const bool unhealthy =
              replica.probe_failures >= config_.health.failure_threshold ||
              target.submit_failures >= config_.health.failure_threshold;
          if (unhealthy && active_count_locked() > 1) {
            drain_locked(replica, target.shard, /*automatic=*/true);
            RouterMetrics::get().auto_drains.inc();
          }
        } else if (replica.state == State::Drained &&
                   replica.auto_drained && target.was_auto_drained &&
                   config_.health.auto_restore) {
          // Hysteresis: one lucky probe is not recovery. The probe is an
          // end-to-end canary (empty score request), so consecutive
          // successes mean the serving path itself is back.
          replica.probe_successes =
              target.probe_ok ? replica.probe_successes + 1 : 0;
          if (replica.probe_successes >=
              config_.health.recovery_threshold) {
            restore_locked(replica, target.shard);
            RouterMetrics::get().auto_restores.inc();
          }
        }
      }
    }
  }
}

}  // namespace muffin::serve
