// ShardServer: one process's worth of shard, behind a socket.
//
// Wraps an InferenceEngine and speaks the batched wire format
// (serve/rpc/wire.h) over TCP or a Unix-domain socket. One ShardServer
// per process is the deployment unit the ROADMAP names: a ShardRouter in
// the client process routes by consistent hash exactly as it does for
// in-process replicas, but the replica lives here, behind
// `muffin_cli serve --listen host:port`.
//
// Concurrency model:
//  * an accept thread hands each connection a reader and a writer thread;
//  * the reader decodes frames and *immediately* submits every record of
//    a ScoreRequest into the engine — so batches from different
//    connections interleave in the engine's Batcher and micro-batch
//    together (cross-connection batching for free), and a pipelining
//    client keeps the engine fed without waiting for earlier responses;
//  * the writer completes responses strictly in request order per
//    connection (FIFO of pending future-sets), which is what lets the
//    client match pipelined responses by sequence number without a
//    reorder buffer.
//
// Failure semantics: if any record of a request fails to score, the
// whole request is answered with one Error frame (echoing its seq) after
// every already-submitted record of that request has been awaited — the
// same quiesce-then-fail rule ShardRouter::predict_batch defines for
// partial failures. A malformed frame (bad magic/version/length or an
// undecodable payload) poisons the stream's framing, so the server sends
// a best-effort Error frame and closes that connection; other
// connections and the engine are unaffected.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "serve/engine.h"
#include "serve/rpc/wire.h"

namespace muffin::serve::rpc {

struct ShardServerConfig {
  EngineConfig engine;  ///< applied to the wrapped engine
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  int backlog = 64;
  /// Deadline for writing one response frame; a client that stops
  /// draining its socket is disconnected rather than wedging the writer.
  int write_timeout_ms = 10'000;
};

class ShardServer {
 public:
  /// Bind `listen` ("host:port", port 0 for ephemeral, or "unix:/path")
  /// and start serving. Throws muffin::Error if the bind fails.
  ShardServer(std::shared_ptr<const core::FusedModel> model,
              const std::string& listen, ShardServerConfig config = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// The bound endpoint with the kernel-resolved port.
  [[nodiscard]] const common::Endpoint& endpoint() const { return endpoint_; }
  [[nodiscard]] std::string address() const { return endpoint_.to_string(); }

  /// Stop accepting, disconnect every client, drain the engine
  /// (idempotent). From a client's viewpoint this is the shard dying.
  void stop();

  /// Graceful shutdown, the SIGTERM path: stop accepting new
  /// connections, keep serving until every connection's pending
  /// responses have been written out (bounded by `grace`), then stop().
  /// Unlike a bare stop(), a client that already got its frames on the
  /// wire never observes a failure.
  void drain(std::chrono::milliseconds grace);

  /// Hot-swap the served model to the head artifact at `path` — the
  /// same operation the Reload wire op performs, exposed for in-process
  /// control (the CLI's SIGHUP handler). Serving never pauses; returns
  /// the installed model version.
  std::uint64_t reload(const std::string& artifact_path) {
    return reload_head_artifact(engine_, artifact_path);
  }

  [[nodiscard]] const InferenceEngine& engine() const { return engine_; }
  [[nodiscard]] std::size_t connections_accepted() const;
  /// Connections currently held (open, or closed but not yet reaped).
  /// The accept loop reaps finished ones on its ~200 ms cadence, so this
  /// returns to the live-client count shortly after peers disconnect.
  [[nodiscard]] std::size_t open_connections() const;

 private:
  /// One response owed to a connection, in request order. Exactly one of
  /// {prebuilt frame, control ack, error, futures} applies.
  struct PendingResponse {
    std::uint64_t seq = 0;
    MsgType type = MsgType::ScoreResponse;
    std::string error;  ///< non-empty: answer with an Error frame
    std::vector<std::future<Prediction>> futures;
    /// Non-empty: send these bytes verbatim (StatsResponse — encoded by
    /// the reader at request time so the snapshot reflects that moment,
    /// but still delivered through the FIFO to preserve per-connection
    /// response order).
    std::vector<std::uint8_t> raw_frame;
    bool traced = false;  ///< request was picked by the trace sampler
  };

  struct Connection {
    common::Socket socket;
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<PendingResponse> pending;
    bool closed = false;
    std::thread reader;
    std::thread writer;
    // Set at thread exit; the accept loop reaps connections where both
    // are true (joins threads, releases the fd and the object). Without
    // reaping, every health probe — one short-lived connection each —
    // would leak an fd and two joinable threads until stop().
    std::atomic<bool> reader_done{false};
    std::atomic<bool> writer_done{false};
  };

  void accept_loop();
  /// Join and release every connection whose threads have both exited.
  void reap_finished_connections();
  void reader_loop(Connection& connection);
  void writer_loop(Connection& connection);
  void enqueue(Connection& connection, PendingResponse response);

  ShardServerConfig config_;
  InferenceEngine engine_;
  common::ListenSocket listener_;
  common::Endpoint endpoint_;

  std::atomic<bool> stopped_{false};
  /// drain() raises this before joining the acceptor: the accept loop
  /// must exit while stopped_ is still false (stop() runs only at the
  /// end of the grace window, and setting stopped_ early would make its
  /// exchange() a no-op and skip the real shutdown).
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> accepted_{0};
  std::thread acceptor_;
  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace muffin::serve::rpc
