// Length-prefixed binary wire format for the cross-process shard tier.
//
// A connection carries a stream of frames. Every frame is
//
//   24-byte header                      payload (payload_len bytes)
//   +--------+--------+--------+        +------------------------+
//   | u32 magic "MUFN"         |        | message-specific bytes |
//   | u16 version | u16 type   |        +------------------------+
//   | u64 seq                  |
//   | u64 payload_len          |
//   +--------------------------+
//
// all little-endian (common/bytes.h). `seq` is chosen by the requester
// and echoed verbatim in the response, which is what makes request
// pipelining on one connection unambiguous. `payload_len` is validated
// against a configured ceiling *before* the payload is read, so a
// corrupt or hostile length field fails cleanly instead of allocating
// gigabytes; decoders are cursor-based and bounds-checked, so truncated
// frames throw muffin::Error and never over-read.
//
// The format is batch-first by design: a ScoreRequest carries a *batch*
// of records and a ScoreResponse carries the full score matrix plus the
// per-row Prediction metadata. The whole in-process scoring path is
// batched (Model::score_batch -> GEMM); shipping batches keeps that path
// hot end to end instead of degrading the remote hop to per-record
// round trips.
//
// Messages (version 2):
//   ScoreRequest   u32 count, then `count` records (data/serialize.h)
//   ScoreResponse  u32 rows, u32 num_classes, rows*num_classes f64
//                  (row-major score matrix), then per row:
//                  u64 predicted, u8 consensus, u8 cached,
//                  u64 model_version — per row, not per response,
//                  because a batch racing a hot-swap may legitimately
//                  carry rows from two adjacent versions
//   HealthProbe    empty payload; the server answers HealthAck
//   HealthAck      empty payload
//   Error          u32 byte length + UTF-8 message; sent instead of a
//                  ScoreResponse when the server failed that request
//   StatsRequest   empty payload; the server answers StatsResponse
//   StatsResponse  the server's authoritative StatsReport:
//                  5x u64 engine counters (requests, batches, cache_hits,
//                  consensus_short_circuits, head_evaluations),
//                  u64 cache_entries,
//                  latency export: u64 count, f64 sum_us, f64 max_us,
//                  f64 elapsed_seconds, u32 n + n*f64 reservoir samples,
//                  metrics snapshot: u32 n_counters x {u16 name_len,
//                  name bytes, u64 value}, u32 n_gauges x {u16 name_len,
//                  name bytes, u64 two's-complement value}, u32 n_hists
//                  x {u16 name_len, name bytes, u32 n_bounds, n_bounds*
//                  f64 upper bounds, (n_bounds+1)*u64 bucket counts,
//                  u64 count, f64 sum}
//   Reload         u32 byte length + UTF-8 artifact path: swap the
//                  server's model to that (server-local) artifact. The
//                  server answers ReloadAck on success, Error otherwise;
//                  either way in-flight scoring is never disturbed.
//   ReloadAck      u64 installed model version
//
// Version 2 widened ScoreResponse rows with the model version that
// scored them (the zero-downtime lifecycle needs the caller to see
// which epoch answered) and added the Reload pair; v1 peers fail
// cleanly on the version check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/socket.h"
#include "data/dataset.h"
#include "serve/engine.h"
#include "serve/replica.h"

namespace muffin::serve::rpc {

inline constexpr std::uint32_t kMagic = 0x4E46'554DU;  // "MUFN" little-endian
inline constexpr std::uint16_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 24;
/// Default payload ceiling; generous for any sane batch, small enough
/// that a corrupt length field cannot exhaust memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint16_t {
  ScoreRequest = 1,
  ScoreResponse = 2,
  HealthProbe = 3,
  HealthAck = 4,
  Error = 5,
  StatsRequest = 6,   ///< additive in v1; empty payload
  StatsResponse = 7,  ///< additive in v1; serialized StatsReport
  Reload = 8,         ///< v2: artifact path; server answers ReloadAck
  ReloadAck = 9,      ///< v2: installed model version
};

struct FrameHeader {
  MsgType type = MsgType::Error;
  std::uint64_t seq = 0;
  std::uint64_t payload_len = 0;
};

/// One decoded frame.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// --- header ---------------------------------------------------------------

/// Append a frame header to `out`.
void encode_header(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint64_t seq, std::uint64_t payload_len);

/// Decode and validate a header from exactly kHeaderBytes bytes: checks
/// magic, version, known type, and payload_len <= max_frame_bytes.
[[nodiscard]] FrameHeader decode_header(
    std::span<const std::uint8_t> bytes,
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

// --- payload encoders / decoders -----------------------------------------
// Encoders return the complete frame (header + payload) ready to send.

[[nodiscard]] std::vector<std::uint8_t> encode_score_request(
    std::uint64_t seq, std::span<const data::Record> records);
/// Pointer-span overload: the client's dispatcher encodes straight from
/// its request wrappers without copying every record first.
[[nodiscard]] std::vector<std::uint8_t> encode_score_request(
    std::uint64_t seq, std::span<const data::Record* const> records);
[[nodiscard]] std::vector<data::Record> decode_score_request(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_score_response(
    std::uint64_t seq, std::span<const Prediction> predictions);
[[nodiscard]] std::vector<Prediction> decode_score_response(
    std::span<const std::uint8_t> payload);

/// HealthProbe / HealthAck (empty payload).
[[nodiscard]] std::vector<std::uint8_t> encode_control(MsgType type,
                                                       std::uint64_t seq);

/// StatsRequest (empty payload); the server answers StatsResponse.
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request(
    std::uint64_t seq);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_response(
    std::uint64_t seq, const StatsReport& report);
/// Bounds-checked decode; hostile payloads (truncation, counts that
/// cannot fit, a latency export claiming recorded requests but shipping
/// no samples) throw muffin::Error.
[[nodiscard]] StatsReport decode_stats_response(
    std::span<const std::uint8_t> payload);

/// Reload: ask the server to hot-swap its model to the artifact at
/// `path` (a path on the *server's* filesystem). Answered with
/// ReloadAck carrying the installed model version.
[[nodiscard]] std::vector<std::uint8_t> encode_reload(std::uint64_t seq,
                                                      const std::string& path);
[[nodiscard]] std::string decode_reload(std::span<const std::uint8_t> payload);
[[nodiscard]] std::vector<std::uint8_t> encode_reload_ack(
    std::uint64_t seq, std::uint64_t model_version);
[[nodiscard]] std::uint64_t decode_reload_ack(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_error(
    std::uint64_t seq, const std::string& message);
[[nodiscard]] std::string decode_error(std::span<const std::uint8_t> payload);

// --- socket framing -------------------------------------------------------

/// Read one whole frame. Returns nullopt on a clean EOF at a frame
/// boundary; throws muffin::Error on truncation, timeout, a malformed
/// header, or an oversized payload. `timeout_ms` bounds each of the two
/// reads (-1 blocks forever).
[[nodiscard]] std::optional<Frame> read_frame(
    common::Socket& socket, std::size_t max_frame_bytes, int timeout_ms);

/// Send one encoded frame (as produced by the encode_* helpers).
void write_frame(common::Socket& socket,
                 std::span<const std::uint8_t> frame_bytes,
                 int timeout_ms = -1);

}  // namespace muffin::serve::rpc
