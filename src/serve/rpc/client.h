// RemoteShard: a ShardServer replica as seen from the client process.
//
// Satisfies the same submit/stats/health surface as an in-process
// replica (serve/replica.h), so the ShardRouter routes to it without
// knowing there is a socket in the way. Three mechanisms keep the remote
// hop batch-first and pipelined:
//
//  * **Client-side micro-batching.** submit() enqueues into a Batcher
//    (same size/deadline policy as the engine); a dispatcher thread pops
//    whole batches and ships each as ONE ScoreRequest frame. The wire
//    carries record batches, so the server's GEMM path stays hot and the
//    per-frame syscall/framing cost is amortized across the batch.
//  * **Connection pooling + pipelining.** A small pool of connections is
//    used round-robin; the dispatcher does not wait for a response
//    before sending the next batch on the same connection. The server
//    answers per connection strictly in request order, so each
//    connection's reader matches responses to its FIFO of in-flight
//    batches by sequence number.
//  * **Deadlines everywhere.** Connect, request, and probe deadlines turn
//    a dead or wedged server into failed futures and a rising
//    consecutive_failures() count — the signal the router's health
//    monitor consumes for auto-drain — never into a hung client thread.
//
// Failure semantics (shared with ShardRouter::predict_batch): a batch is
// all-or-error. If its connection dies or its deadline passes, every
// in-flight request on that connection fails with muffin::Error; the
// next batch tries a fresh connection. probe() opens a dedicated
// short-lived connection for an end-to-end canary (an empty score
// request through the server's full request path). A probe deliberately
// does NOT clear consecutive_failures() — only real request successes
// or the router restoring the shard (reset_failures()) do — so a
// probe-alive but request-dead server cannot launder its failure
// history.
//
// Stats are client-observed: latency() is the round trip measured here
// (submit to response, including client batching delay — what a caller
// of this process actually waits), counters() are reconstructed from the
// per-prediction response flags. cache_entries()/cache_contains() are
// unknowable across the wire and report 0/false.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "serve/batcher.h"
#include "serve/replica.h"
#include "serve/rpc/wire.h"

namespace muffin::serve::rpc {

struct RemoteShardConfig {
  std::size_t connections = 2;   ///< pooled connections, used round-robin
  std::size_t max_batch = 32;    ///< client-side batch size flush
  std::chrono::microseconds max_delay{500};  ///< client-side deadline flush
  std::chrono::milliseconds connect_timeout{1000};
  std::chrono::milliseconds request_timeout{5000};
  std::chrono::milliseconds probe_timeout{500};
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Reconnect backoff: after a failed connect the shard waits a full-
  /// jittered exponential window — U(0, min(cap, initial·2^failures)) —
  /// before dialing the endpoint again. Batches arriving inside the
  /// window fail fast (feeding consecutive_failures and the router's
  /// auto-drain/retry machinery) instead of hammering a dead endpoint
  /// once per request.
  std::chrono::milliseconds backoff_initial{50};
  std::chrono::milliseconds backoff_cap{2000};
};

class RemoteShard final : public ReplicaBackend {
 public:
  /// `endpoint` is "host:port" or "unix:/path". Construction does not
  /// connect — the first batch does — so a router can be built before
  /// its remote shards are up.
  explicit RemoteShard(const std::string& endpoint,
                       RemoteShardConfig config = {});
  ~RemoteShard() override;

  RemoteShard(const RemoteShard&) = delete;
  RemoteShard& operator=(const RemoteShard&) = delete;

  [[nodiscard]] std::future<Prediction> submit(
      const data::Record& record) override;
  void shutdown() override;
  [[nodiscard]] bool probe() override;
  void reset_failures() override;

  [[nodiscard]] std::size_t consecutive_failures() const override {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool remote() const override { return true; }
  [[nodiscard]] std::string describe() const override {
    return endpoint_.to_string();
  }
  [[nodiscard]] EngineCounters counters() const override;
  [[nodiscard]] const LatencyStats& latency() const override {
    return latency_;
  }
  [[nodiscard]] std::size_t cache_entries() const override { return 0; }
  [[nodiscard]] bool cache_contains(std::uint64_t) const override {
    return false;
  }

  /// Fetch the server's authoritative stats over the Stats RPC, on a
  /// dedicated short-lived connection (like probe(), so it cannot
  /// interleave with pipelined score traffic). Throws muffin::Error when
  /// the server is unreachable or does not speak the Stats op.
  [[nodiscard]] StatsReport fetch_stats();
  /// ReplicaBackend surface: fetch_stats with failures mapped to nullopt.
  [[nodiscard]] std::optional<StatsReport> authoritative_stats() override;

  /// Hot-swap the server's model over the Reload RPC, on a dedicated
  /// short-lived connection (like probe/stats — control traffic must not
  /// queue behind pipelined score batches, and a failed reload must not
  /// poison them). `artifact_path` names a file on the *server's*
  /// filesystem. Returns the installed model version; throws
  /// muffin::Error when the server is unreachable, rejects the artifact,
  /// or refuses a non-advancing version. Deliberately not counted toward
  /// consecutive_failures — a bad rollout artifact must not drain an
  /// otherwise healthy shard.
  [[nodiscard]] std::uint64_t reload(const std::string& artifact_path) override;

  [[nodiscard]] const RemoteShardConfig& config() const { return config_; }

  /// Lifetime count of data-path connect attempts (reconnect dials;
  /// probe/stats connections excluded). The backoff tests pin how often
  /// a dead endpoint gets dialed over a time window.
  [[nodiscard]] std::size_t connect_attempts() const {
    return connect_attempts_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct ClientRequest {
    data::Record record;
    Clock::time_point enqueued;
    std::promise<Prediction> promise;
    /// Picked by the edge sampler (obs::Tracer::sample) at submit time;
    /// traced requests emit rpc.client.roundtrip span events.
    bool traced = false;
  };

  /// One pipelined request frame awaiting its response, in send order.
  struct PendingBatch {
    std::uint64_t seq = 0;
    Clock::time_point deadline;
    std::vector<ClientRequest> requests;
    bool traced = false;  ///< any request in the batch is traced
  };

  struct Connection {
    common::Socket socket;
    std::mutex mutex;  ///< guards pending and dead
    std::deque<PendingBatch> pending;
    bool dead = true;  ///< (re)connected lazily by the dispatcher
    std::thread reader;
  };

  void dispatch_loop();
  /// Send one batch on some pooled connection; fails every promise in
  /// the batch if no connection can be established.
  void send_batch(std::vector<ClientRequest> batch);
  void reader_loop(Connection& connection);
  /// Fail every in-flight batch on `connection` and mark it dead.
  void fail_connection(Connection& connection, const std::string& why);
  void fail_batch(std::vector<ClientRequest>& requests,
                  const std::string& why);
  void deliver(PendingBatch batch, std::vector<Prediction> predictions);

  common::Endpoint endpoint_;
  RemoteShardConfig config_;

  /// Arm the reconnect backoff window after a failed dial. Dispatcher-
  /// thread-only (send_batch runs solely on the dispatcher), like the
  /// window state below.
  void note_connect_failure();

  Batcher<ClientRequest> batcher_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::size_t next_connection_ = 0;  ///< dispatcher-only round-robin cursor
  std::size_t connect_failures_ = 0;          ///< consecutive failed dials
  Clock::time_point next_connect_attempt_{};  ///< epoch: first dial is free
  std::atomic<std::uint64_t> connect_attempts_{0};

  LatencyStats latency_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::size_t> consecutive_failures_{0};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> cache_hits_{0};
  std::atomic<std::size_t> consensus_short_circuits_{0};
  std::atomic<std::size_t> head_evaluations_{0};

  std::atomic<bool> stopped_{false};
  std::thread dispatcher_;
};

}  // namespace muffin::serve::rpc
