#include "serve/rpc/wire.h"

#include <limits>

#include "common/error.h"
#include "data/serialize.h"

namespace muffin::serve::rpc {

namespace {

bool known_type(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(MsgType::ScoreRequest) &&
         raw <= static_cast<std::uint16_t>(MsgType::ReloadAck);
}

/// Reserve header space in a fresh frame buffer; the payload length is
/// patched in once the payload has been appended.
std::vector<std::uint8_t> begin_frame(MsgType type, std::uint64_t seq) {
  std::vector<std::uint8_t> frame;
  encode_header(frame, type, seq, 0);
  return frame;
}

void finish_frame(std::vector<std::uint8_t>& frame) {
  // payload_len lives in the last 8 header bytes.
  common::patch_u64(frame, kHeaderBytes - 8, frame.size() - kHeaderBytes);
}

}  // namespace

void encode_header(std::vector<std::uint8_t>& out, MsgType type,
                   std::uint64_t seq, std::uint64_t payload_len) {
  common::put_u32(out, kMagic);
  common::put_u16(out, kVersion);
  common::put_u16(out, static_cast<std::uint16_t>(type));
  common::put_u64(out, seq);
  common::put_u64(out, payload_len);
}

FrameHeader decode_header(std::span<const std::uint8_t> bytes,
                          std::size_t max_frame_bytes) {
  MUFFIN_REQUIRE(bytes.size() == kHeaderBytes,
                 "frame header must be exactly " +
                     std::to_string(kHeaderBytes) + " bytes");
  common::ByteReader reader(bytes);
  const std::uint32_t magic = reader.u32();
  MUFFIN_REQUIRE(magic == kMagic, "bad frame magic (not a muffin peer)");
  const std::uint16_t version = reader.u16();
  MUFFIN_REQUIRE(version == kVersion,
                 "unsupported wire version " + std::to_string(version) +
                     " (this build speaks " + std::to_string(kVersion) + ")");
  const std::uint16_t raw_type = reader.u16();
  MUFFIN_REQUIRE(known_type(raw_type),
                 "unknown frame type " + std::to_string(raw_type));
  FrameHeader header;
  header.type = static_cast<MsgType>(raw_type);
  header.seq = reader.u64();
  header.payload_len = reader.u64();
  MUFFIN_REQUIRE(header.payload_len <= max_frame_bytes,
                 "frame payload of " + std::to_string(header.payload_len) +
                     " bytes exceeds the " +
                     std::to_string(max_frame_bytes) + "-byte ceiling");
  return header;
}

namespace {

/// Shared implementation over any accessor yielding `const Record&`.
template <typename Range, typename Deref>
std::vector<std::uint8_t> encode_score_request_impl(std::uint64_t seq,
                                                    const Range& records,
                                                    Deref deref) {
  MUFFIN_REQUIRE(
      records.size() <= std::numeric_limits<std::uint32_t>::max(),
      "record batch too large for the wire format");
  std::vector<std::uint8_t> frame = begin_frame(MsgType::ScoreRequest, seq);
  if (!records.empty()) {
    // Size the frame once from the first record's shape (records of one
    // batch share it in practice); growth still works if they differ.
    const data::Record& first = deref(records[0]);
    frame.reserve(frame.size() + 4 +
                  records.size() *
                      (40 + 8 * (first.groups.size() +
                                 first.features.size())));
  }
  common::put_u32(frame, static_cast<std::uint32_t>(records.size()));
  for (std::size_t i = 0; i < records.size(); ++i) {
    data::encode_record(deref(records[i]), frame);
  }
  finish_frame(frame);
  return frame;
}

}  // namespace

std::vector<std::uint8_t> encode_score_request(
    std::uint64_t seq, std::span<const data::Record> records) {
  return encode_score_request_impl(
      seq, records, [](const data::Record& record) -> const data::Record& {
        return record;
      });
}

std::vector<std::uint8_t> encode_score_request(
    std::uint64_t seq, std::span<const data::Record* const> records) {
  return encode_score_request_impl(
      seq, records, [](const data::Record* record) -> const data::Record& {
        return *record;
      });
}

std::vector<data::Record> decode_score_request(
    std::span<const std::uint8_t> payload) {
  common::ByteReader reader(payload);
  const std::uint32_t count = reader.u32();
  // A record is at least 32 bytes (uid, label, counts, difficulty).
  reader.require_count(count, 32);
  std::vector<data::Record> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    records.push_back(data::decode_record(reader));
  }
  MUFFIN_REQUIRE(reader.done(), "trailing bytes after score request");
  return records;
}

std::vector<std::uint8_t> encode_score_response(
    std::uint64_t seq, std::span<const Prediction> predictions) {
  const std::size_t rows = predictions.size();
  const std::size_t num_classes = rows == 0 ? 0 : predictions[0].scores.size();
  std::vector<std::uint8_t> frame = begin_frame(MsgType::ScoreResponse, seq);
  frame.reserve(frame.size() + 8 + rows * (num_classes * 8 + 18));
  common::put_u32(frame, static_cast<std::uint32_t>(rows));
  common::put_u32(frame, static_cast<std::uint32_t>(num_classes));
  for (const Prediction& prediction : predictions) {
    MUFFIN_REQUIRE(prediction.scores.size() == num_classes,
                   "ragged score rows in one response");
    common::put_f64_span(frame, prediction.scores);
  }
  for (const Prediction& prediction : predictions) {
    common::put_u64(frame, static_cast<std::uint64_t>(prediction.predicted));
    frame.push_back(prediction.consensus ? 1 : 0);
    frame.push_back(prediction.cached ? 1 : 0);
    common::put_u64(frame, prediction.model_version);
  }
  finish_frame(frame);
  return frame;
}

std::vector<Prediction> decode_score_response(
    std::span<const std::uint8_t> payload) {
  common::ByteReader reader(payload);
  const std::uint32_t rows = reader.u32();
  const std::uint32_t num_classes = reader.u32();
  // Each row costs num_classes doubles plus 18 metadata bytes.
  reader.require_count(rows,
                       static_cast<std::size_t>(num_classes) * 8 + 18);
  std::vector<Prediction> predictions(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    reader.f64_into(predictions[r].scores, num_classes);
  }
  for (std::uint32_t r = 0; r < rows; ++r) {
    predictions[r].predicted = static_cast<std::size_t>(reader.u64());
    predictions[r].consensus = reader.u8() != 0;
    predictions[r].cached = reader.u8() != 0;
    predictions[r].model_version = reader.u64();
  }
  MUFFIN_REQUIRE(reader.done(), "trailing bytes after score response");
  return predictions;
}

std::vector<std::uint8_t> encode_control(MsgType type, std::uint64_t seq) {
  MUFFIN_REQUIRE(type == MsgType::HealthProbe || type == MsgType::HealthAck,
                 "control frames are probe/ack only");
  std::vector<std::uint8_t> frame = begin_frame(type, seq);
  finish_frame(frame);
  return frame;
}

namespace {

void put_name(std::vector<std::uint8_t>& frame, const std::string& name) {
  MUFFIN_REQUIRE(name.size() <= std::numeric_limits<std::uint16_t>::max(),
                 "metric name too long for the wire format");
  common::put_u16(frame, static_cast<std::uint16_t>(name.size()));
  frame.insert(frame.end(), name.begin(), name.end());
}

std::string read_name(common::ByteReader& reader) {
  const std::uint16_t length = reader.u16();
  const std::span<const std::uint8_t> bytes = reader.bytes(length);
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

std::vector<std::uint8_t> encode_stats_request(std::uint64_t seq) {
  std::vector<std::uint8_t> frame = begin_frame(MsgType::StatsRequest, seq);
  finish_frame(frame);
  return frame;
}

std::vector<std::uint8_t> encode_stats_response(std::uint64_t seq,
                                                const StatsReport& report) {
  std::vector<std::uint8_t> frame = begin_frame(MsgType::StatsResponse, seq);
  common::put_u64(frame, report.counters.requests);
  common::put_u64(frame, report.counters.batches);
  common::put_u64(frame, report.counters.cache_hits);
  common::put_u64(frame, report.counters.consensus_short_circuits);
  common::put_u64(frame, report.counters.head_evaluations);
  common::put_u64(frame, report.cache_entries);

  const LatencyStats::Export& latency = report.latency;
  MUFFIN_REQUIRE(
      latency.samples_us.size() <=
          std::numeric_limits<std::uint32_t>::max(),
      "latency reservoir too large for the wire format");
  common::put_u64(frame, latency.count);
  common::put_f64(frame, latency.sum_us);
  common::put_f64(frame, latency.max_us);
  common::put_f64(frame, latency.elapsed_seconds);
  common::put_u32(frame,
                  static_cast<std::uint32_t>(latency.samples_us.size()));
  common::put_f64_span(frame, latency.samples_us);

  const obs::MetricsSnapshot& metrics = report.metrics;
  common::put_u32(frame, static_cast<std::uint32_t>(metrics.counters.size()));
  for (const obs::CounterSnapshot& counter : metrics.counters) {
    put_name(frame, counter.name);
    common::put_u64(frame, counter.value);
  }
  common::put_u32(frame, static_cast<std::uint32_t>(metrics.gauges.size()));
  for (const obs::GaugeSnapshot& gauge : metrics.gauges) {
    put_name(frame, gauge.name);
    common::put_u64(frame, static_cast<std::uint64_t>(gauge.value));
  }
  common::put_u32(frame,
                  static_cast<std::uint32_t>(metrics.histograms.size()));
  for (const obs::HistogramSnapshot& histogram : metrics.histograms) {
    put_name(frame, histogram.name);
    common::put_u32(frame,
                    static_cast<std::uint32_t>(histogram.bounds.size()));
    common::put_f64_span(frame, histogram.bounds);
    for (const std::uint64_t count : histogram.counts) {
      common::put_u64(frame, count);
    }
    common::put_u64(frame, histogram.count);
    common::put_f64(frame, histogram.sum);
  }
  finish_frame(frame);
  return frame;
}

StatsReport decode_stats_response(std::span<const std::uint8_t> payload) {
  common::ByteReader reader(payload);
  StatsReport report;
  report.counters.requests = static_cast<std::size_t>(reader.u64());
  report.counters.batches = static_cast<std::size_t>(reader.u64());
  report.counters.cache_hits = static_cast<std::size_t>(reader.u64());
  report.counters.consensus_short_circuits =
      static_cast<std::size_t>(reader.u64());
  report.counters.head_evaluations = static_cast<std::size_t>(reader.u64());
  report.cache_entries = static_cast<std::size_t>(reader.u64());

  LatencyStats::Export& latency = report.latency;
  latency.count = static_cast<std::size_t>(reader.u64());
  latency.sum_us = reader.f64();
  latency.max_us = reader.f64();
  latency.elapsed_seconds = reader.f64();
  const std::uint32_t n_samples = reader.u32();
  reader.require_count(n_samples, 8);
  reader.f64_into(latency.samples_us, n_samples);
  // merge_export weighs each reservoir entry as count/samples requests;
  // a hostile report claiming recorded requests with an empty (or
  // impossibly over-full) reservoir must fail here, not divide by zero
  // in the importer.
  MUFFIN_REQUIRE(latency.count == 0 || !latency.samples_us.empty(),
                 "latency export has requests but no reservoir samples");
  MUFFIN_REQUIRE(latency.samples_us.size() <= latency.count,
                 "latency export reservoir larger than its request count");

  const std::uint32_t n_counters = reader.u32();
  reader.require_count(n_counters, 10);  // 2-byte name length + u64
  report.metrics.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    obs::CounterSnapshot counter;
    counter.name = read_name(reader);
    counter.value = reader.u64();
    report.metrics.counters.push_back(std::move(counter));
  }
  const std::uint32_t n_gauges = reader.u32();
  reader.require_count(n_gauges, 10);
  report.metrics.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    obs::GaugeSnapshot gauge;
    gauge.name = read_name(reader);
    gauge.value = static_cast<std::int64_t>(reader.u64());
    report.metrics.gauges.push_back(std::move(gauge));
  }
  const std::uint32_t n_histograms = reader.u32();
  // Minimum histogram: empty name, zero bounds, one +Inf bucket count,
  // count, sum.
  reader.require_count(n_histograms, 2 + 4 + 8 + 8 + 8);
  report.metrics.histograms.reserve(n_histograms);
  for (std::uint32_t i = 0; i < n_histograms; ++i) {
    obs::HistogramSnapshot histogram;
    histogram.name = read_name(reader);
    const std::uint32_t n_bounds = reader.u32();
    reader.require_count(n_bounds, 8);
    reader.f64_into(histogram.bounds, n_bounds);
    histogram.counts.reserve(static_cast<std::size_t>(n_bounds) + 1);
    for (std::uint32_t b = 0; b <= n_bounds; ++b) {
      histogram.counts.push_back(reader.u64());
    }
    histogram.count = reader.u64();
    histogram.sum = reader.f64();
    report.metrics.histograms.push_back(std::move(histogram));
  }
  MUFFIN_REQUIRE(reader.done(), "trailing bytes after stats response");
  return report;
}

std::vector<std::uint8_t> encode_reload(std::uint64_t seq,
                                        const std::string& path) {
  MUFFIN_REQUIRE(!path.empty(), "reload needs an artifact path");
  std::vector<std::uint8_t> frame = begin_frame(MsgType::Reload, seq);
  common::put_u32(frame, static_cast<std::uint32_t>(path.size()));
  frame.insert(frame.end(), path.begin(), path.end());
  finish_frame(frame);
  return frame;
}

std::string decode_reload(std::span<const std::uint8_t> payload) {
  common::ByteReader reader(payload);
  const std::uint32_t length = reader.u32();
  MUFFIN_REQUIRE(length > 0, "reload frame carries an empty artifact path");
  reader.require_count(length, 1);
  const std::span<const std::uint8_t> bytes = reader.bytes(length);
  MUFFIN_REQUIRE(reader.done(), "trailing bytes after reload path");
  return std::string(bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> encode_reload_ack(std::uint64_t seq,
                                            std::uint64_t model_version) {
  std::vector<std::uint8_t> frame = begin_frame(MsgType::ReloadAck, seq);
  common::put_u64(frame, model_version);
  finish_frame(frame);
  return frame;
}

std::uint64_t decode_reload_ack(std::span<const std::uint8_t> payload) {
  common::ByteReader reader(payload);
  const std::uint64_t model_version = reader.u64();
  MUFFIN_REQUIRE(reader.done(), "trailing bytes after reload ack");
  return model_version;
}

std::vector<std::uint8_t> encode_error(std::uint64_t seq,
                                       const std::string& message) {
  std::vector<std::uint8_t> frame = begin_frame(MsgType::Error, seq);
  common::put_u32(frame, static_cast<std::uint32_t>(message.size()));
  frame.insert(frame.end(), message.begin(), message.end());
  finish_frame(frame);
  return frame;
}

std::string decode_error(std::span<const std::uint8_t> payload) {
  common::ByteReader reader(payload);
  const std::uint32_t length = reader.u32();
  reader.require_count(length, 1);
  const std::span<const std::uint8_t> bytes = reader.bytes(length);
  MUFFIN_REQUIRE(reader.done(), "trailing bytes after error message");
  return std::string(bytes.begin(), bytes.end());
}

std::optional<Frame> read_frame(common::Socket& socket,
                                std::size_t max_frame_bytes, int timeout_ms) {
  std::uint8_t header_bytes[kHeaderBytes];
  if (!socket.recv_all(header_bytes, kHeaderBytes, timeout_ms)) {
    return std::nullopt;  // peer closed between frames
  }
  Frame frame;
  frame.header = decode_header({header_bytes, kHeaderBytes}, max_frame_bytes);
  frame.payload.resize(frame.header.payload_len);
  if (frame.header.payload_len > 0 &&
      !socket.recv_all(frame.payload.data(), frame.payload.size(),
                       timeout_ms)) {
    throw Error("peer closed between frame header and payload");
  }
  return frame;
}

void write_frame(common::Socket& socket,
                 std::span<const std::uint8_t> frame_bytes, int timeout_ms) {
  socket.send_all(frame_bytes.data(), frame_bytes.size(), timeout_ms);
}

}  // namespace muffin::serve::rpc
