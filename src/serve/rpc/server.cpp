#include "serve/rpc/server.h"

#include <chrono>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace muffin::serve::rpc {

namespace {

/// Server-side transport metrics, resolved once per process.
struct ServerMetrics {
  obs::Counter& connections =
      obs::registry().counter("rpc.server.connections");
  obs::Gauge& open_connections =
      obs::registry().gauge("rpc.server.open_connections");
  obs::Counter& frames_received =
      obs::registry().counter("rpc.server.frames_received");
  obs::Counter& bytes_received =
      obs::registry().counter("rpc.server.bytes_received");
  obs::Counter& frames_sent = obs::registry().counter("rpc.server.frames_sent");
  obs::Counter& bytes_sent = obs::registry().counter("rpc.server.bytes_sent");
  obs::Counter& errors_sent = obs::registry().counter("rpc.server.errors_sent");
  obs::Counter& stats_requests =
      obs::registry().counter("rpc.server.stats_requests");
  obs::Counter& reload_requests =
      obs::registry().counter("rpc.server.reload_requests");
  obs::Histogram& decode_us = obs::registry().histogram(
      "rpc.server.decode_us", obs::latency_us_buckets());
  obs::Histogram& encode_us = obs::registry().histogram(
      "rpc.server.encode_us", obs::latency_us_buckets());

  static ServerMetrics& get() {
    static ServerMetrics metrics;
    return metrics;
  }
};

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

ShardServer::ShardServer(std::shared_ptr<const core::FusedModel> model,
                         const std::string& listen, ShardServerConfig config)
    : config_(config),
      engine_(std::move(model), config.engine),
      listener_(common::Endpoint::parse(listen), config.backlog),
      endpoint_(listener_.local()) {
  acceptor_ = std::thread([this]() { accept_loop(); });
}

ShardServer::~ShardServer() { stop(); }

std::size_t ShardServer::connections_accepted() const {
  return accepted_.load(std::memory_order_relaxed);
}

std::size_t ShardServer::open_connections() const {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  return connections_.size();
}

void ShardServer::stop() {
  if (stopped_.exchange(true)) return;
  // interrupt() wakes a blocked accept without touching the fd; the fd
  // itself is only released after the acceptor thread is joined, so the
  // acceptor never polls a closed descriptor.
  listener_.interrupt();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  // Wake every connection's reader (blocked in recv) and writer (blocked
  // on the pending queue), then join them. Promised work still drains:
  // writers deliver whatever the engine already accepted before the
  // socket went away, then bail on the send.
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::unique_ptr<Connection>& connection : connections_) {
      connection->socket.shutdown_both();
      {
        const std::lock_guard<std::mutex> conn_lock(connection->mutex);
        connection->closed = true;
      }
      connection->ready.notify_all();
    }
  }
  for (const std::unique_ptr<Connection>& connection : connections_) {
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
  }
  engine_.shutdown();
}

void ShardServer::drain(std::chrono::milliseconds grace) {
  // Phase 1 — stop accepting: wake and join the acceptor, release the
  // listener so the OS refuses new connections for the whole window.
  // Each operation is idempotent, so the stop() below (and the
  // destructor's) can safely repeat them. draining_ is what actually
  // terminates the accept loop here — stopped_ must stay false until
  // the in-flight frames below are given their grace window.
  draining_.store(true, std::memory_order_relaxed);
  listener_.interrupt();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  // Phase 2 — finish in-flight frames: poll until every connection's
  // response FIFO is empty or the grace period runs out. Readers are
  // still up, so responses keep flowing to their clients meanwhile.
  const auto deadline = std::chrono::steady_clock::now() + grace;
  for (;;) {
    bool idle = true;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      for (const std::unique_ptr<Connection>& connection : connections_) {
        const std::lock_guard<std::mutex> conn_lock(connection->mutex);
        if (!connection->pending.empty()) {
          idle = false;
          break;
        }
      }
    }
    if (idle || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // A writer pops a response before writing it, so an empty FIFO can
  // still have one frame mid-send; give it a beat before stop() shuts
  // the sockets down under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop();
}

void ShardServer::accept_loop() {
  while (!stopped_.load(std::memory_order_relaxed) &&
         !draining_.load(std::memory_order_relaxed)) {
    // A short accept timeout keeps shutdown latency bounded without a
    // cross-thread wakeup protocol for the listener, and doubles as the
    // cadence for reaping closed connections.
    common::Socket socket = listener_.accept(/*timeout_ms=*/200);
    reap_finished_connections();
    if (!socket.valid()) continue;
    if (stopped_.load(std::memory_order_relaxed)) break;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::get().connections.inc();
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection& ref = *connection;
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
      ServerMetrics::get().open_connections.set(
          static_cast<std::int64_t>(connections_.size()));
    }
    ref.reader = std::thread([this, &ref]() { reader_loop(ref); });
    ref.writer = std::thread([this, &ref]() { writer_loop(ref); });
  }
}

void ShardServer::reap_finished_connections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (std::unique_ptr<Connection>& connection : connections_) {
      if (connection->reader_done.load(std::memory_order_acquire) &&
          connection->writer_done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(connection));
      }
    }
    std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
      return c == nullptr;
    });
    ServerMetrics::get().open_connections.set(
        static_cast<std::int64_t>(connections_.size()));
  }
  // Join outside the lock; both threads have already signalled exit, so
  // these joins return immediately.
  for (const std::unique_ptr<Connection>& connection : finished) {
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
  }
}

void ShardServer::enqueue(Connection& connection, PendingResponse response) {
  {
    const std::lock_guard<std::mutex> lock(connection.mutex);
    connection.pending.push_back(std::move(response));
  }
  connection.ready.notify_one();
}

void ShardServer::reader_loop(Connection& connection) {
  ServerMetrics& metrics = ServerMetrics::get();
  obs::Tracer& tracer = obs::Tracer::instance();
  try {
    for (;;) {
      // Chaos seam: an injected error here looks like a poisoned stream
      // and tears this one connection down, like any malformed frame.
      fail::maybe_fail("rpc.server.recv");
      std::optional<Frame> frame =
          read_frame(connection.socket, config_.max_frame_bytes,
                     /*timeout_ms=*/-1);
      if (!frame.has_value()) break;  // client closed cleanly
      metrics.frames_received.inc();
      metrics.bytes_received.inc(kHeaderBytes + frame->payload.size());

      PendingResponse response;
      response.seq = frame->header.seq;
      // The server samples its own frames: client-side sampling decisions
      // do not travel on the wire, so each process traces independently.
      response.traced = tracer.sample();
      switch (frame->header.type) {
        case MsgType::HealthProbe:
          response.type = MsgType::HealthAck;
          break;
        case MsgType::StatsRequest: {
          // Encode NOW so the report reflects this moment, but deliver
          // through the FIFO so responses stay in request order.
          metrics.stats_requests.inc();
          response.type = MsgType::StatsResponse;
          StatsReport report;
          report.counters = engine_.counters();
          report.cache_entries = engine_.cache_entries();
          report.latency = engine_.latency().to_export();
          report.metrics = obs::registry().snapshot();
          response.raw_frame = encode_stats_response(response.seq, report);
          break;
        }
        case MsgType::Reload: {
          // Swap NOW, on the reader: the publish is an O(1) pointer
          // swap, so blocking this connection's framing for it is
          // cheaper than a handoff, and requests already submitted keep
          // scoring on their pinned snapshots throughout. A decode
          // failure (malformed path) poisons the stream like any other
          // undecodable frame; a reload failure (missing/corrupt
          // artifact, non-advancing version) answers with an Error
          // frame and leaves the serving model untouched.
          metrics.reload_requests.inc();
          response.type = MsgType::ReloadAck;
          const std::string artifact_path = decode_reload(frame->payload);
          try {
            const std::uint64_t installed = reload(artifact_path);
            response.raw_frame = encode_reload_ack(response.seq, installed);
          } catch (const std::exception& error) {
            response.error = error.what();
          }
          break;
        }
        case MsgType::ScoreRequest: {
          response.type = MsgType::ScoreResponse;
          const auto decode_start = std::chrono::steady_clock::now();
          std::vector<data::Record> records = [&]() {
            const obs::TraceSpan decode_span(
                "rpc.server.decode", response.traced,
                response.traced ? "\"seq\":" + std::to_string(response.seq)
                                : std::string());
            return decode_score_request(frame->payload);
          }();
          metrics.decode_us.observe(elapsed_us(decode_start));
          try {
            // One atomic group enqueue per frame: the records enter the
            // engine's Batcher together (one lock, one wakeup) and
            // micro-batch with records from every other connection.
            // All-or-nothing, so a shutdown race leaves no partial
            // prefix to quiesce — the request just fails whole.
            response.futures = engine_.submit_batch(std::move(records));
          } catch (const std::exception& error) {
            response.error = error.what();
          }
          break;
        }
        default:
          // Clients never send responses/acks/errors; a peer that does is
          // not speaking the protocol.
          throw Error("unexpected frame type from client");
      }
      enqueue(connection, std::move(response));
    }
  } catch (const std::exception& error) {
    // Malformed frame or transport failure: framing is untrustworthy now.
    // Best-effort error notice, then tear the connection down.
    PendingResponse notice;
    notice.seq = 0;
    notice.error = error.what();
    enqueue(connection, std::move(notice));
  }
  {
    const std::lock_guard<std::mutex> lock(connection.mutex);
    connection.closed = true;
  }
  connection.ready.notify_all();
  connection.reader_done.store(true, std::memory_order_release);
}

void ShardServer::writer_loop(Connection& connection) {
  ServerMetrics& metrics = ServerMetrics::get();
  bool transport_ok = true;
  for (;;) {
    PendingResponse response;
    {
      std::unique_lock<std::mutex> lock(connection.mutex);
      connection.ready.wait(lock, [&connection]() {
        return !connection.pending.empty() || connection.closed;
      });
      if (connection.pending.empty()) break;  // closed and fully drained
      response = std::move(connection.pending.front());
      connection.pending.pop_front();
    }

    // Resolve the response payload outside the lock: waiting on engine
    // futures here is what preserves per-connection FIFO order while the
    // reader keeps pipelining new requests into the engine.
    std::vector<std::uint8_t> frame;
    if (!response.raw_frame.empty()) {
      frame = std::move(response.raw_frame);  // pre-encoded StatsResponse
    } else if (response.type == MsgType::HealthAck && response.error.empty()) {
      frame = encode_control(MsgType::HealthAck, response.seq);
    } else if (!response.error.empty()) {
      metrics.errors_sent.inc();
      frame = encode_error(response.seq, response.error);
    } else {
      try {
        const std::vector<Prediction> predictions =
            collect_all_or_error(std::move(response.futures));
        const auto encode_start = std::chrono::steady_clock::now();
        {
          const obs::TraceSpan encode_span(
              "rpc.server.encode", response.traced,
              response.traced ? "\"seq\":" + std::to_string(response.seq)
                              : std::string());
          frame = encode_score_response(response.seq, predictions);
        }
        metrics.encode_us.observe(elapsed_us(encode_start));
      } catch (const std::exception& error) {
        // collect_all_or_error already awaited every future, so the
        // whole request can be failed with one Error frame.
        metrics.errors_sent.inc();
        frame = encode_error(response.seq, error.what());
      }
    }

    if (!transport_ok) continue;  // keep draining futures, stop writing
    try {
      const obs::TraceSpan write_span(
          "rpc.server.write", response.traced,
          response.traced ? "\"bytes\":" + std::to_string(frame.size())
                          : std::string());
      fail::maybe_fail("rpc.server.send");
      write_frame(connection.socket, frame, config_.write_timeout_ms);
      metrics.frames_sent.inc();
      metrics.bytes_sent.inc(frame.size());
    } catch (const std::exception&) {
      // Client gone or wedged: stop writing, but keep consuming pending
      // future-sets so engine promises are all observed before join.
      transport_ok = false;
      connection.socket.shutdown_both();
    }
  }
  connection.writer_done.store(true, std::memory_order_release);
}

}  // namespace muffin::serve::rpc
