#include "serve/rpc/client.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace muffin::serve::rpc {

namespace {

int ms(std::chrono::milliseconds d) { return static_cast<int>(d.count()); }

/// Client-side transport metrics, resolved once per process.
struct ClientMetrics {
  obs::Counter& frames_sent = obs::registry().counter("rpc.client.frames_sent");
  obs::Counter& bytes_sent = obs::registry().counter("rpc.client.bytes_sent");
  obs::Counter& frames_received =
      obs::registry().counter("rpc.client.frames_received");
  obs::Counter& bytes_received =
      obs::registry().counter("rpc.client.bytes_received");
  obs::Counter& reconnects = obs::registry().counter("rpc.client.reconnects");
  obs::Counter& deadline_expiries =
      obs::registry().counter("rpc.client.deadline_expiries");
  obs::Counter& request_failures =
      obs::registry().counter("rpc.client.request_failures");
  obs::Histogram& encode_us = obs::registry().histogram(
      "rpc.client.encode_us", obs::latency_us_buckets());
  obs::Histogram& decode_us = obs::registry().histogram(
      "rpc.client.decode_us", obs::latency_us_buckets());

  static ClientMetrics& get() {
    static ClientMetrics metrics;
    return metrics;
  }
};

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

RemoteShard::RemoteShard(const std::string& endpoint,
                         RemoteShardConfig config)
    : endpoint_(common::Endpoint::parse(endpoint)),
      config_(config),
      batcher_({config.max_batch, config.max_delay, 0,
                "rpc.client.batcher"}) {
  MUFFIN_REQUIRE(config_.connections > 0,
                 "remote shard needs at least one connection");
  connections_.reserve(config_.connections);
  for (std::size_t c = 0; c < config_.connections; ++c) {
    connections_.push_back(std::make_unique<Connection>());
  }
  dispatcher_ = std::thread([this]() { dispatch_loop(); });
}

RemoteShard::~RemoteShard() { shutdown(); }

std::future<Prediction> RemoteShard::submit(const data::Record& record) {
  MUFFIN_REQUIRE(!stopped_.load(), "cannot submit to a stopped remote shard");
  ClientRequest request{record, Clock::now(), {},
                       obs::Tracer::instance().sample()};
  std::future<Prediction> future = request.promise.get_future();
  batcher_.push(std::move(request));
  return future;
}

void RemoteShard::shutdown() {
  if (stopped_.exchange(true)) return;
  batcher_.close();
  // The dispatcher drains queued batches (sending them if it can), then
  // exits; readers keep collecting responses for in-flight batches.
  if (dispatcher_.joinable()) dispatcher_.join();
  const Clock::time_point grace =
      Clock::now() + config_.request_timeout +
      std::chrono::milliseconds(200);
  for (const std::unique_ptr<Connection>& connection : connections_) {
    for (;;) {
      {
        const std::lock_guard<std::mutex> lock(connection->mutex);
        if (connection->pending.empty() || connection->dead) break;
      }
      if (Clock::now() >= grace) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    fail_connection(*connection, "remote shard shut down");
    if (connection->reader.joinable()) connection->reader.join();
    connection->socket.close();
  }
}

bool RemoteShard::probe() {
  // The probe is an EMPTY ScoreRequest, not a bare HealthProbe: it
  // exercises the server's whole request path — framing, decode, the
  // engine's submit gate (a stopped engine throws and comes back as an
  // Error frame), response encode — so a process that is alive but can
  // no longer serve fails its probe. It deliberately does NOT reset
  // consecutive_failures(): the counter clears only when real requests
  // succeed or the router restores the shard (reset_failures), so a
  // probe-alive/request-dead server cannot launder its failure history.
  if (fail::fires("rpc.client.probe")) return false;  // injected probe loss
  try {
    common::Socket socket =
        common::connect_endpoint(endpoint_, ms(config_.connect_timeout));
    const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
    write_frame(socket,
                encode_score_request(seq, std::span<const data::Record>{}),
                ms(config_.probe_timeout));
    const std::optional<Frame> reply =
        read_frame(socket, config_.max_frame_bytes, ms(config_.probe_timeout));
    return reply.has_value() &&
           reply->header.type == MsgType::ScoreResponse &&
           reply->header.seq == seq &&
           decode_score_response(reply->payload).empty();
  } catch (const std::exception&) {
    return false;
  }
}

void RemoteShard::reset_failures() {
  consecutive_failures_.store(0, std::memory_order_relaxed);
}

EngineCounters RemoteShard::counters() const {
  EngineCounters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.batches = batches_.load(std::memory_order_relaxed);
  counters.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  counters.consensus_short_circuits =
      consensus_short_circuits_.load(std::memory_order_relaxed);
  counters.head_evaluations =
      head_evaluations_.load(std::memory_order_relaxed);
  return counters;
}

void RemoteShard::dispatch_loop() {
  for (;;) {
    std::vector<ClientRequest> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    send_batch(std::move(batch));
  }
}

void RemoteShard::send_batch(std::vector<ClientRequest> batch) {
  ClientMetrics& metrics = ClientMetrics::get();
  bool any_traced = false;
  for (const ClientRequest& request : batch) any_traced |= request.traced;
  // Try every pooled connection once, starting at the round-robin
  // cursor; a batch only fails when no connection can be (re)established.
  for (std::size_t attempt = 0; attempt < connections_.size(); ++attempt) {
    Connection& connection =
        *connections_[next_connection_++ % connections_.size()];
    try {
      bool dead;
      {
        const std::lock_guard<std::mutex> lock(connection.mutex);
        dead = connection.dead;
      }
      if (dead) {
        // Inside the reconnect backoff window, do not dial the endpoint
        // again: sweep on to the next pooled connection (which shares
        // the shard-level window), so a fully dead shard fails the batch
        // fast — feeding consecutive_failures and the router's
        // auto-drain/retry machinery — instead of paying a connect
        // timeout per request.
        if (Clock::now() < next_connect_attempt_) continue;
        // Replace the transport only after the previous reader exited.
        if (connection.reader.joinable()) connection.reader.join();
        // A write can race the teardown and leave an entry queued after
        // the reader is gone; it belongs to the dead transport and can
        // never be answered on the new one — fail it now.
        fail_connection(connection, "connection reset before response");
        connect_attempts_.fetch_add(1, std::memory_order_relaxed);
        try {
          fail::maybe_fail("rpc.client.connect");
          connection.socket =
              common::connect_endpoint(endpoint_, ms(config_.connect_timeout));
        } catch (...) {
          note_connect_failure();
          throw;  // the outer catch sweeps this connection
        }
        connect_failures_ = 0;
        metrics.reconnects.inc();
        {
          const std::lock_guard<std::mutex> lock(connection.mutex);
          connection.dead = false;
        }
        connection.reader =
            std::thread([this, &connection]() { reader_loop(connection); });
      }

      const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
      // Encode straight from the request wrappers — no record copies on
      // the dispatch hot path.
      std::vector<const data::Record*> records;
      records.reserve(batch.size());
      for (const ClientRequest& request : batch) {
        records.push_back(&request.record);
      }
      const auto encode_start = std::chrono::steady_clock::now();
      const std::vector<std::uint8_t> frame = [&]() {
        const obs::TraceSpan encode_span(
            "rpc.client.encode", any_traced,
            any_traced ? "\"seq\":" + std::to_string(seq) : std::string());
        return encode_score_request(seq, records);
      }();
      metrics.encode_us.observe(elapsed_us(encode_start));

      // Register the in-flight batch BEFORE sending: the response can
      // arrive the instant the frame hits the wire.
      PendingBatch pending;
      pending.seq = seq;
      pending.deadline = Clock::now() + config_.request_timeout;
      pending.requests = std::move(batch);
      pending.traced = any_traced;
      {
        const std::lock_guard<std::mutex> lock(connection.mutex);
        connection.pending.push_back(std::move(pending));
      }
      try {
        const obs::TraceSpan write_span(
            "rpc.client.write", any_traced,
            any_traced ? "\"bytes\":" + std::to_string(frame.size())
                       : std::string());
        fail::maybe_fail("rpc.client.send");
        write_frame(connection.socket, frame, ms(config_.request_timeout));
        metrics.frames_sent.inc();
        metrics.bytes_sent.inc(frame.size());
      } catch (const std::exception& error) {
        // A partial frame write poisons the stream; everything pipelined
        // on this connection is undeliverable. Write failures count
        // toward auto-drain like any other failed submit (counted
        // before the promises fail, so observers see both together).
        consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
        metrics.request_failures.inc();
        fail_connection(connection, error.what());
        return;
      }
      return;  // sent; the reader owns it now
    } catch (const std::exception& error) {
      // Usually a failed connect (pending empty, this is a no-op sweep);
      // but if the failure struck a live connection before the write —
      // e.g. an allocation failure while encoding — its pipelined
      // batches must fail too, not hang until shutdown.
      fail_connection(connection, error.what());
    }
  }
  consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
  metrics.request_failures.inc();
  fail_batch(batch, "no connection to " + endpoint_.to_string());
}

void RemoteShard::note_connect_failure() {
  ++connect_failures_;
  const std::int64_t initial =
      std::max<std::int64_t>(1, config_.backoff_initial.count());
  const std::int64_t cap =
      std::max<std::int64_t>(initial, config_.backoff_cap.count());
  const int shift =
      static_cast<int>(std::min<std::size_t>(connect_failures_ - 1, 20));
  const std::int64_t base =
      std::min(cap, initial << shift);  // exponential, capped
  // Full jitter — U(0, base] — decorrelates the reconnect storms of many
  // clients dialing one recovering server. Deterministic per (endpoint,
  // attempt count), like every other stochastic stream in the library.
  std::uint64_t state =
      fnv1a64(endpoint_.to_string()) ^
      mix64(connect_attempts_.load(std::memory_order_relaxed));
  const std::int64_t wait = 1 + static_cast<std::int64_t>(
      counter_unit(splitmix64_next(state)) * static_cast<double>(base));
  next_connect_attempt_ = Clock::now() + std::chrono::milliseconds(wait);
}

void RemoteShard::reader_loop(Connection& connection) {
  ClientMetrics& metrics = ClientMetrics::get();
  for (;;) {
    // Exit once the shard is stopped and nothing is in flight here.
    bool has_pending;
    Clock::time_point oldest_deadline;
    {
      const std::lock_guard<std::mutex> lock(connection.mutex);
      if (connection.dead) return;
      has_pending = !connection.pending.empty();
      if (has_pending) oldest_deadline = connection.pending.front().deadline;
    }
    if (!has_pending && stopped_.load(std::memory_order_relaxed)) return;

    // Once a batch is popped it is OURS: if anything below throws, its
    // promises must still be failed explicitly — fail_connection only
    // sweeps what is left in the pending deque.
    PendingBatch batch;
    bool popped = false;
    try {
      // Short poll slices let the deadline check run even when the
      // server sends nothing at all.
      if (!connection.socket.readable(/*timeout_ms=*/50)) {
        if (has_pending && Clock::now() >= oldest_deadline) {
          metrics.deadline_expiries.inc();
          throw Error("request to " + endpoint_.to_string() +
                      " timed out after " +
                      std::to_string(config_.request_timeout.count()) + " ms");
        }
        continue;
      }
      std::optional<Frame> frame =
          read_frame(connection.socket, config_.max_frame_bytes,
                     ms(config_.request_timeout));
      if (frame.has_value()) {
        metrics.frames_received.inc();
        metrics.bytes_received.inc(kHeaderBytes + frame->payload.size());
      }
      if (!frame.has_value()) {
        // Clean EOF. Fine when idle; fatal with work in flight.
        const std::lock_guard<std::mutex> lock(connection.mutex);
        if (connection.pending.empty()) {
          connection.dead = true;
          return;
        }
        throw Error("server closed with requests in flight");
      }

      {
        const std::lock_guard<std::mutex> lock(connection.mutex);
        MUFFIN_REQUIRE(!connection.pending.empty(),
                       "response frame with nothing in flight");
        MUFFIN_REQUIRE(frame->header.seq == connection.pending.front().seq,
                       "response sequence mismatch (pipelining broken)");
        batch = std::move(connection.pending.front());
        connection.pending.pop_front();
        popped = true;
      }

      if (frame->header.type == MsgType::Error) {
        consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
        metrics.request_failures.inc();
        fail_batch(batch.requests, decode_error(frame->payload));
        continue;
      }
      MUFFIN_REQUIRE(frame->header.type == MsgType::ScoreResponse,
                     "unexpected frame type from server");
      const auto decode_start = std::chrono::steady_clock::now();
      std::vector<Prediction> predictions = [&]() {
        const obs::TraceSpan decode_span(
            "rpc.client.decode", batch.traced,
            batch.traced ? "\"seq\":" + std::to_string(batch.seq)
                         : std::string());
        return decode_score_response(frame->payload);
      }();
      metrics.decode_us.observe(elapsed_us(decode_start));
      MUFFIN_REQUIRE(predictions.size() == batch.requests.size(),
                     "response row count does not match the request batch");
      deliver(std::move(batch), std::move(predictions));
      consecutive_failures_.store(0, std::memory_order_relaxed);
    } catch (const std::exception& error) {
      // Count BEFORE failing promises: a caller that observes a failed
      // future must also observe a non-zero failure count (the health
      // monitor reads it; tests pin the ordering).
      consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
      metrics.request_failures.inc();
      if (popped) fail_batch(batch.requests, error.what());
      fail_connection(connection, error.what());
      return;
    }
  }
}

void RemoteShard::deliver(PendingBatch batch,
                          std::vector<Prediction> predictions) {
  const Clock::time_point now = Clock::now();
  batches_.fetch_add(1, std::memory_order_relaxed);
  obs::Tracer& tracer = obs::Tracer::instance();
  const double now_us = batch.traced ? tracer.now_us() : 0.0;
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    latency_.record(now - batch.requests[i].enqueued);
    if (batch.requests[i].traced) {
      // Client-observed round trip: submit (incl. client batching delay)
      // to response delivery — the client-side mirror of serve.request.
      const double enqueued_us = tracer.to_us(batch.requests[i].enqueued);
      tracer.record("rpc.client.roundtrip", enqueued_us,
                    now_us - enqueued_us,
                    "\"uid\":" +
                        std::to_string(batch.requests[i].record.uid));
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    const Prediction& prediction = predictions[i];
    if (prediction.cached) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
    } else if (prediction.consensus) {
      consensus_short_circuits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      head_evaluations_.fetch_add(1, std::memory_order_relaxed);
    }
    batch.requests[i].promise.set_value(std::move(predictions[i]));
  }
}

StatsReport RemoteShard::fetch_stats() {
  // A dedicated connection, like probe(): stats must not queue behind
  // pipelined score batches, and a failed fetch must not poison them.
  common::Socket socket =
      common::connect_endpoint(endpoint_, ms(config_.connect_timeout));
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  write_frame(socket, encode_stats_request(seq),
              ms(config_.request_timeout));
  const std::optional<Frame> reply =
      read_frame(socket, config_.max_frame_bytes,
                 ms(config_.request_timeout));
  MUFFIN_REQUIRE(reply.has_value(),
                 "server closed before answering the stats request");
  MUFFIN_REQUIRE(reply->header.type == MsgType::StatsResponse,
                 "unexpected frame type for a stats request");
  MUFFIN_REQUIRE(reply->header.seq == seq,
                 "stats response sequence mismatch");
  return decode_stats_response(reply->payload);
}

std::uint64_t RemoteShard::reload(const std::string& artifact_path) {
  common::Socket socket =
      common::connect_endpoint(endpoint_, ms(config_.connect_timeout));
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  write_frame(socket, encode_reload(seq, artifact_path),
              ms(config_.request_timeout));
  const std::optional<Frame> reply =
      read_frame(socket, config_.max_frame_bytes,
                 ms(config_.request_timeout));
  MUFFIN_REQUIRE(reply.has_value(),
                 "server closed before answering the reload request");
  MUFFIN_REQUIRE(reply->header.seq == seq,
                 "reload response sequence mismatch");
  if (reply->header.type == MsgType::Error) {
    throw Error("reload rejected by " + endpoint_.to_string() + ": " +
                decode_error(reply->payload));
  }
  MUFFIN_REQUIRE(reply->header.type == MsgType::ReloadAck,
                 "unexpected frame type for a reload request");
  return decode_reload_ack(reply->payload);
}

std::optional<StatsReport> RemoteShard::authoritative_stats() {
  try {
    return fetch_stats();
  } catch (const std::exception&) {
    // Unreachable server or a pre-Stats peer: the caller falls back to
    // this client's observed accounting. Deliberately NOT counted toward
    // consecutive_failures — stats polling must never drain a shard.
    return std::nullopt;
  }
}

void RemoteShard::fail_connection(Connection& connection,
                                  const std::string& why) {
  std::deque<PendingBatch> orphaned;
  {
    const std::lock_guard<std::mutex> lock(connection.mutex);
    connection.dead = true;
    orphaned.swap(connection.pending);
  }
  connection.socket.shutdown_both();
  for (PendingBatch& batch : orphaned) {
    fail_batch(batch.requests, why);
  }
}

void RemoteShard::fail_batch(std::vector<ClientRequest>& requests,
                             const std::string& why) {
  for (ClientRequest& request : requests) {
    try {
      request.promise.set_exception(
          std::make_exception_ptr(Error("remote shard failure: " + why)));
    } catch (const std::future_error&) {
      // Already settled (e.g. a batch that failed after partial
      // delivery); the caller has its answer, nothing to do.
    }
  }
}

}  // namespace muffin::serve::rpc
