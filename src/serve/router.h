// Sharded serving tier: consistent-hash routing over engine replicas.
//
// One InferenceEngine batches and memoizes on a single host's worth of
// cores; the next scale step is partitioning traffic across N engine
// replicas. ShardRouter fronts N in-process replicas behind the same
// predict/predict_async surface as the engine itself and routes every
// request by consistent hash on the record uid (muffin::HashRing, virtual
// nodes on a 64-bit ring). Routing by uid is what makes sharding
// composable with the engine's result memo: a repeated uid always lands
// on the shard whose LRU already holds its prediction, so the aggregate
// memo behaves like one cache with N times the capacity and no
// cross-shard duplication.
//
// Topology is dynamic:
//  * add_replica() spins up a fresh engine and takes its ring points;
//    only the uids adjacent to those points move (expected K/(N+1) of K
//    warmed keys), everyone else keeps their warm memo.
//  * drain(shard) takes a replica off the ring without stopping its
//    engine — the degraded-mode path. Traffic re-routes to ring
//    successors; in-flight requests still complete; the drained memo
//    stays warm so restore(shard) resumes exactly where it left off.
//  * remove_replica(shard) drains and permanently shuts the engine down.
//
// Every routed answer is bit-identical to FusedModel::scores: replicas
// share one immutable FusedModel and each engine already guarantees
// bit-identity, so the router adds placement, not arithmetic.
// tests/serve/test_router.cpp proves this across shard counts, and
// tests/serve/test_stress.cpp hammers the router with concurrent clients
// and concurrent topology changes (run under TSan in CI).
//
// Thread safety: submit/predict may be called from any number of client
// threads concurrently with topology changes and stats aggregation.
// Routing takes a shared lock; topology mutation takes the exclusive
// lock. Engines are never destroyed while the router lives, so per-shard
// counters stay readable even for removed replicas.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/hash.h"
#include "serve/engine.h"

namespace muffin::serve {

struct RouterConfig {
  std::size_t shards = 2;          ///< initial replica count
  std::size_t virtual_nodes = 64;  ///< ring points per replica
  EngineConfig engine;             ///< applied to every replica
};

/// Point-in-time view of one shard, for operator tables and tests.
struct ShardInfo {
  std::size_t shard = 0;
  bool active = false;  ///< on the ring (receiving new traffic)
  bool alive = false;   ///< engine running (false once removed)
  std::size_t routed = 0;  ///< requests this router sent to the shard
  std::size_t cache_entries = 0;
  EngineCounters counters;
  LatencyStats::Snapshot latency;
};

class ShardRouter {
 public:
  explicit ShardRouter(std::shared_ptr<const core::FusedModel> model,
                       RouterConfig config = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Route one record to its shard; the future completes when that
  /// shard's engine scores it.
  [[nodiscard]] std::future<Prediction> submit(const data::Record& record);

  /// Synchronous single-record convenience: submit + wait.
  [[nodiscard]] Prediction predict(const data::Record& record);

  /// Submit every record, wait for all, return predictions in input order.
  [[nodiscard]] std::vector<Prediction> predict_batch(
      std::span<const data::Record> records);

  /// Shut every replica down (idempotent). New submissions are rejected.
  void shutdown();

  /// The shard a uid routes to right now. Throws once the router is
  /// stopped or if every replica is drained.
  [[nodiscard]] std::size_t shard_for(std::uint64_t uid) const;

  /// Add a fresh replica (cold memo) and return its shard id. Only keys
  /// adjacent to its ring points move to it.
  std::size_t add_replica();

  /// Degraded mode: stop routing new traffic to `shard` but keep its
  /// engine (and memo) alive. Throws if the shard is not active or is the
  /// last active replica.
  void drain(std::size_t shard);

  /// Put a drained replica back on the ring; its memo is still warm.
  void restore(std::size_t shard);

  /// Drain (if needed) and permanently shut down `shard`'s engine.
  void remove_replica(std::size_t shard);

  /// Total replicas ever created (shard ids are stable, never reused).
  [[nodiscard]] std::size_t replica_count() const;
  /// Replicas currently on the ring.
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] bool active(std::size_t shard) const;
  [[nodiscard]] const InferenceEngine& replica(std::size_t shard) const;

  /// Merged accounting across every replica that ever served traffic:
  /// exact count/mean/max, reservoir-merged percentiles, wall-clock
  /// throughput (LatencyStats::merge semantics).
  [[nodiscard]] LatencyStats::Snapshot aggregate_latency() const;
  [[nodiscard]] EngineCounters aggregate_counters() const;
  [[nodiscard]] std::vector<ShardInfo> shard_infos() const;

  [[nodiscard]] const RouterConfig& config() const { return config_; }

 private:
  enum class State { Active, Drained, Removed };

  struct Replica {
    std::unique_ptr<InferenceEngine> engine;
    State state = State::Active;
    std::atomic<std::size_t> routed{0};
  };

  /// Requires the exclusive lock.
  std::size_t add_replica_locked();
  [[nodiscard]] Replica& checked_locked(std::size_t shard) const;
  [[nodiscard]] std::size_t active_count_locked() const;

  std::shared_ptr<const core::FusedModel> model_;
  RouterConfig config_;

  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  HashRing ring_;
  bool stopped_ = false;
};

}  // namespace muffin::serve
