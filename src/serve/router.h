// Sharded serving tier: consistent-hash routing over replicas that may
// live in this process or behind a socket.
//
// One InferenceEngine batches and memoizes on a single host's worth of
// cores; ShardRouter partitions traffic across N replicas behind the
// same predict/predict_async surface and routes every request by
// consistent hash on the record uid (muffin::HashRing, virtual nodes on
// a 64-bit ring). Routing by uid is what makes sharding composable with
// the engine's result memo: a repeated uid always lands on the shard
// whose LRU already holds its prediction.
//
// A replica is a ReplicaBackend (serve/replica.h): in-process
// (LocalReplica owning an engine) or remote (rpc::RemoteShard speaking
// the batched wire format to a ShardServer in another process). The
// router treats both identically — placement, drain state and routed
// accounting live here; transport and scoring live in the backend.
//
// Topology is dynamic:
//  * add_replica() / add_remote_replica(endpoint) join the ring; only
//    the uids adjacent to the new points move.
//  * drain(shard) takes a replica off the ring without stopping it —
//    the degraded-mode path; restore(shard) puts it back.
//  * remove_replica(shard) permanently retires a replica. Its stats
//    FREEZE AT REMOVAL: the router snapshots counters/latency/memo size
//    before shutting the backend down and destroys the backend; every
//    aggregate and shard_infos() view reports the frozen snapshot from
//    then on. One rule, shared by operator removal and remote shards
//    that die — removed replicas are never poked again.
//
// Health-checked auto-drain: when any remote replica exists (and
// HealthConfig::probe_interval is non-zero), a monitor thread probes the
// remote replicas off the locks. A probe is an end-to-end canary (an
// empty score request through the server's full request path), so a
// process that is alive but can no longer serve fails it. A replica
// that fails `failure_threshold` consecutive probes — or whose backend
// reports that many consecutive failed/timed-out submits — is drained
// automatically (taken off the ring; traffic reroutes to ring
// successors), unless it is the last active replica. An auto-drained
// replica is restored after `recovery_threshold` consecutive successful
// probes (hysteresis against flapping); restoring clears the backend's
// failure history. Operator drains are never auto-restored.
//
// Partial-failure rule (shared with the RPC tier): predict_batch is
// all-or-error. If a mid-loop submit throws, every already-submitted
// request is awaited (results discarded) before the error propagates, so
// no work is silently left in flight and the router can be shut down or
// resubmitted to immediately. RemoteShard applies the same rule to each
// pipelined batch; ShardServer applies it per request frame.
//
// Thread safety: submit/predict may be called from any number of client
// threads concurrently with topology changes, health transitions and
// stats aggregation. Routing takes a shared lock; topology mutation
// takes the exclusive lock.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "serve/replica.h"
#include "serve/rpc/client.h"

namespace muffin::serve {

/// Health monitoring knobs for remote replicas.
struct HealthConfig {
  /// Probe period; 0 disables the monitor thread entirely.
  std::chrono::milliseconds probe_interval{500};
  /// Consecutive probe failures (or backend-reported consecutive submit
  /// failures) that trigger auto-drain.
  std::size_t failure_threshold = 3;
  /// Restore an auto-drained replica once probes succeed again.
  bool auto_restore = true;
  /// Consecutive successful probes required before an auto-drained
  /// replica is restored — hysteresis so one lucky probe cannot bounce a
  /// flaky shard straight back onto the ring. Restoring also clears the
  /// backend's failure history (ReplicaBackend::reset_failures).
  std::size_t recovery_threshold = 2;
};

/// Retry/failover policy for failed submits.
struct RetryConfig {
  /// Total submit attempts per request; 1 disables retries (the default,
  /// keeping the hot path untouched). A retried request fails over to
  /// the next healthy replica on the ring — scoring is deterministic and
  /// the memo canonicalizes, so the retried answer is bit-identical to
  /// what the original shard would have served. muffin::Overloaded is
  /// NEVER retried: a shed is a deliberate capacity signal.
  std::size_t max_attempts = 1;
  /// Global retry budget, a token bucket shared by every request: each
  /// successful routed submit earns `budget_ratio` tokens, each retry
  /// spends one. Retries can therefore add at most ~budget_ratio of
  /// goodput in extra load — a fleet-wide outage degrades into fast
  /// failures instead of a retry storm.
  double budget_ratio = 0.1;
  /// Token-bank cap, and the initial balance (so failover works from a
  /// cold start). Sized to absorb one client-side send failure, which
  /// orphans several pipelined batches' worth of requests at once.
  std::size_t budget_burst = 128;
};

struct RouterConfig {
  /// Initial in-process replica count. May be 0 when remote_endpoints is
  /// non-empty (a pure client-side router needs no local model).
  std::size_t shards = 2;
  std::size_t virtual_nodes = 64;  ///< ring points per replica
  EngineConfig engine;             ///< applied to every local replica
  /// Remote shards ("host:port" or "unix:/path") joined at construction.
  std::vector<std::string> remote_endpoints;
  rpc::RemoteShardConfig remote;   ///< applied to every remote replica
  HealthConfig health;
  RetryConfig retry;
};

/// Point-in-time view of one shard, for operator tables and tests.
struct ShardInfo {
  std::size_t shard = 0;
  bool active = false;  ///< on the ring (receiving new traffic)
  bool alive = false;   ///< backend running (false once removed)
  bool remote = false;
  bool auto_drained = false;  ///< drained by the health monitor
  std::string backend;     ///< "local" or the remote endpoint
  std::size_t routed = 0;  ///< requests this router sent to the shard
  std::size_t cache_entries = 0;
  EngineCounters counters;
  LatencyStats::Snapshot latency;
};

struct RouterTestAccess;  // test-only backdoor (tests/serve)

class ShardRouter {
 public:
  /// `model` may be null only when no local replicas are configured
  /// (config.shards == 0 and all replicas remote).
  explicit ShardRouter(std::shared_ptr<const core::FusedModel> model,
                       RouterConfig config = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Route one record to its shard; the future completes when that
  /// shard's backend scores it.
  [[nodiscard]] std::future<Prediction> submit(const data::Record& record);

  /// Synchronous single-record convenience: submit + wait.
  [[nodiscard]] Prediction predict(const data::Record& record);

  /// Submit every record, wait for all, return predictions in input
  /// order. All-or-error: a mid-loop failure awaits the submitted prefix
  /// before rethrowing (see the partial-failure rule above).
  [[nodiscard]] std::vector<Prediction> predict_batch(
      std::span<const data::Record> records);

  /// Shut every replica down (idempotent). New submissions are rejected.
  void shutdown();

  /// The shard a uid routes to right now. Throws once the router is
  /// stopped or if every replica is drained.
  [[nodiscard]] std::size_t shard_for(std::uint64_t uid) const;

  /// Add a fresh in-process replica (cold memo); returns its shard id.
  std::size_t add_replica();

  /// Add a remote replica served by a ShardServer at `endpoint`
  /// ("host:port" or "unix:/path"); returns its shard id. Starts the
  /// health monitor on first use if the interval is non-zero.
  std::size_t add_remote_replica(const std::string& endpoint);

  /// Degraded mode: stop routing new traffic to `shard` but keep its
  /// backend alive. Throws if the shard is not active or is the last
  /// active replica. Operator drains are never auto-restored.
  void drain(std::size_t shard);

  /// Put a drained replica back on the ring.
  void restore(std::size_t shard);

  /// Permanently retire `shard`: freeze its stats, shut down and destroy
  /// its backend. See the freeze-at-removal rule above.
  void remove_replica(std::size_t shard);

  /// Total replicas ever created (shard ids are stable, never reused).
  [[nodiscard]] std::size_t replica_count() const;
  /// Replicas currently on the ring.
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] bool active(std::size_t shard) const;
  /// The wrapped engine of an in-process replica. Throws for remote or
  /// removed shards (removed backends are destroyed at removal).
  [[nodiscard]] const InferenceEngine& replica(std::size_t shard) const;

  /// Merged accounting across every replica that ever served traffic
  /// (removed replicas contribute their frozen snapshots): exact
  /// count/mean/max, reservoir-merged percentiles, wall-clock throughput
  /// (LatencyStats::merge semantics). Remote replicas contribute
  /// client-observed stats (see serve/replica.h).
  [[nodiscard]] LatencyStats::Snapshot aggregate_latency() const;
  [[nodiscard]] EngineCounters aggregate_counters() const;
  [[nodiscard]] std::vector<ShardInfo> shard_infos() const;

  /// Authoritative fleet view, as opposed to the client-observed
  /// aggregates above: local replicas answer from their own engines;
  /// remote replicas are asked for the *server's* stats over the Stats
  /// RPC (ReplicaBackend::authoritative_stats), so their latency is what
  /// the server measured and their counters include every client of that
  /// server. Network fetches run off the router locks, like health
  /// probes. A remote replica whose fetch fails — and removed replicas —
  /// fall back to their frozen/client-observed accounting, so the report
  /// is always complete. The report's `metrics` field is THIS process's
  /// registry snapshot (per-server registries are visible via
  /// rpc::RemoteShard::fetch_stats / `muffin_cli stats`).
  [[nodiscard]] StatsReport authoritative_stats() const;

  /// Hot-swap one shard's model to the head artifact at `artifact_path`
  /// (local replicas read the path here; remote replicas resolve it on
  /// their server — see ReplicaBackend::reload). The swap happens under
  /// live traffic with zero failed requests: the shard stays on the
  /// ring throughout, in-flight batches finish on their pinned version.
  /// Runs off the router locks, like health probes. Returns the
  /// installed model version; throws for removed shards or a rejected
  /// artifact.
  std::uint64_t reload_shard(std::size_t shard,
                             const std::string& artifact_path);

  /// Roll the whole fleet, shard by shard, to the artifact at
  /// `artifact_path`: every live replica (active or drained — a drained
  /// shard must not come back serving a stale model) reloads in shard
  /// order, one at a time. Returns the installed version per live shard,
  /// indexed by shard id (0 marks removed shards). The first failing
  /// shard aborts the roll and rethrows, leaving already-rolled shards
  /// on the new version; rerun with a freshly stamped (or unstamped)
  /// artifact to finish the roll — each registry's rollback guard
  /// refuses a version it has already passed.
  std::vector<std::uint64_t> reload_all(const std::string& artifact_path);

  [[nodiscard]] const RouterConfig& config() const { return config_; }

 private:
  friend struct RouterTestAccess;

  enum class State { Active, Drained, Removed };

  struct Replica {
    /// shared_ptr so the health monitor can probe off the router locks
    /// without racing removal; null once Removed.
    std::shared_ptr<ReplicaBackend> backend;
    State state = State::Active;
    bool auto_drained = false;       ///< drained by the health monitor
    std::size_t probe_failures = 0;  ///< consecutive, monitor-maintained
    std::size_t probe_successes = 0;  ///< consecutive, while auto-drained
    std::atomic<std::size_t> routed{0};
    std::string describe;  ///< survives removal for post-mortem tables
    bool is_remote = false;
    // Freeze-at-removal snapshot (meaningful once state == Removed).
    EngineCounters frozen_counters;
    std::unique_ptr<LatencyStats> frozen_latency;
    std::size_t frozen_cache_entries = 0;
  };

  /// All require the exclusive lock.
  std::size_t add_local_replica_locked();
  std::size_t add_backend_locked(std::shared_ptr<ReplicaBackend> backend,
                                 bool is_remote);
  void drain_locked(Replica& replica, std::size_t shard, bool automatic);
  void restore_locked(Replica& replica, std::size_t shard);
  [[nodiscard]] Replica& checked_locked(std::size_t shard) const;
  [[nodiscard]] std::size_t active_count_locked() const;

  /// Route `record` to a ring replica not in `avoid` and submit it.
  /// Writes the chosen shard id through `shard_out` (when non-null)
  /// BEFORE the backend submit, so a submit-time throw still tells the
  /// retry loop which shard to avoid next.
  [[nodiscard]] std::future<Prediction> submit_routed(
      const data::Record& record, const std::vector<std::uint64_t>& avoid,
      std::uint64_t* shard_out);
  /// Deferred-retry driver: resolve the eager first attempt, then fail
  /// over across the ring under the token budget. Runs on the caller's
  /// thread when the returned future is waited on.
  [[nodiscard]] Prediction submit_with_retries(data::Record record,
                                               std::future<Prediction> first,
                                               std::uint64_t first_shard,
                                               std::exception_ptr first_error);
  [[nodiscard]] bool try_take_retry_token();
  void earn_retry_token();

  void ensure_monitor_locked();
  void health_loop();

  std::shared_ptr<const core::FusedModel> model_;
  RouterConfig config_;

  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  HashRing ring_;
  bool stopped_ = false;

  /// Retry-budget bank in millitokens (1000 = one retry), so fractional
  /// budget_ratio earns accumulate without floating-point atomics.
  std::atomic<std::int64_t> retry_tokens_millis_{0};

  // Health monitor lifecycle (started lazily with the first remote
  // replica; woken for shutdown via the condition variable).
  std::mutex monitor_mutex_;
  std::condition_variable monitor_wake_;
  bool monitor_stop_ = false;
  std::thread monitor_;
};

}  // namespace muffin::serve
