#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace muffin::serve {

double percentile(std::vector<double> samples, double q) {
  MUFFIN_REQUIRE(!samples.empty(), "percentile of an empty sample set");
  MUFFIN_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  // Nearest-rank: smallest sample with at least q% of the mass at or below.
  const std::size_t rank = q <= 0.0
                               ? 0
                               : static_cast<std::size_t>(std::ceil(
                                     q / 100.0 *
                                     static_cast<double>(samples.size()))) -
                                     1;
  const std::size_t index = std::min(rank, samples.size() - 1);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

namespace {

/// splitmix64 step — cheap, stateless-friendly uniform 64-bit stream.
std::uint64_t next_u64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

LatencyStats::LatencyStats(std::size_t reservoir_capacity)
    : capacity_(reservoir_capacity),
      rng_state_(0x1a7e9c5ULL),
      start_(Clock::now()) {
  MUFFIN_REQUIRE(capacity_ > 0, "latency reservoir needs capacity >= 1");
  reservoir_us_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void LatencyStats::record(std::chrono::nanoseconds latency) {
  const double us =
      std::chrono::duration<double, std::micro>(latency).count();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
  if (reservoir_us_.size() < capacity_) {
    reservoir_us_.push_back(us);
  } else {
    // Algorithm R: keep each of the count_ samples with equal probability.
    const std::size_t slot =
        static_cast<std::size_t>(next_u64(rng_state_) % count_);
    if (slot < capacity_) reservoir_us_[slot] = us;
  }
}

void LatencyStats::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  reservoir_us_.clear();
  count_ = 0;
  sum_us_ = 0.0;
  max_us_ = 0.0;
  start_ = Clock::now();
}

LatencyStats::Snapshot LatencyStats::snapshot() const {
  Snapshot snap;
  std::vector<double> samples;
  Clock::time_point start;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    samples = reservoir_us_;
    start = start_;
    snap.count = count_;
    snap.mean_us = count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0;
    snap.max_us = max_us_;
  }
  snap.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (snap.elapsed_seconds > 0.0) {
    snap.requests_per_second =
        static_cast<double>(snap.count) / snap.elapsed_seconds;
  }
  if (samples.empty()) return snap;
  snap.p50_us = percentile(samples, 50.0);
  snap.p95_us = percentile(samples, 95.0);
  snap.p99_us = percentile(samples, 99.0);
  return snap;
}

}  // namespace muffin::serve
