#include "serve/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/hash.h"

namespace muffin::serve {

double percentile(std::vector<double> samples, double q) {
  MUFFIN_REQUIRE(!samples.empty(), "percentile of an empty sample set");
  MUFFIN_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  // Nearest-rank: smallest sample with at least q% of the mass at or below.
  const std::size_t rank = q <= 0.0
                               ? 0
                               : static_cast<std::size_t>(std::ceil(
                                     q / 100.0 *
                                     static_cast<double>(samples.size()))) -
                                     1;
  const std::size_t index = std::min(rank, samples.size() - 1);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

namespace {

/// Uniform double in (0, 1] from the splitmix64 stream (never exactly 0,
/// so it is safe under a logarithm).
double next_unit(std::uint64_t& state) {
  const std::uint64_t bits = splitmix64_next(state) >> 11;  // 53 bits
  return (static_cast<double>(bits) + 1.0) / 9007199254740993.0;  // 2^53 + 1
}

}  // namespace

LatencyStats::LatencyStats(std::size_t reservoir_capacity)
    : capacity_(reservoir_capacity),
      rng_state_(0x1a7e9c5ULL),
      start_(Clock::now()) {
  MUFFIN_REQUIRE(capacity_ > 0, "latency reservoir needs capacity >= 1");
  reservoir_us_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void LatencyStats::record(std::chrono::nanoseconds latency) {
  const double us =
      std::chrono::duration<double, std::micro>(latency).count();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
  if (reservoir_us_.size() < capacity_) {
    reservoir_us_.push_back(us);
  } else {
    // Algorithm R: keep each of the count_ samples with equal probability.
    const std::size_t slot =
        static_cast<std::size_t>(splitmix64_next(rng_state_) % count_);
    if (slot < capacity_) reservoir_us_[slot] = us;
  }
}

void LatencyStats::merge(const LatencyStats& other) {
  MUFFIN_REQUIRE(&other != this, "cannot merge LatencyStats into itself");
  // Copy the other side first so the two locks are never held together
  // (merge(a, b) concurrent with merge(b, a) must not deadlock).
  std::vector<double> other_samples;
  std::size_t other_count = 0;
  double other_sum = 0.0;
  double other_max = 0.0;
  Clock::time_point other_start;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    other_samples = other.reservoir_us_;
    other_count = other.count_;
    other_sum = other.sum_us_;
    other_max = other.max_us_;
    other_start = other.start_;
  }
  merge_state(other_samples, other_count, other_sum, other_max, other_start);
}

LatencyStats::Export LatencyStats::to_export() const {
  Export out;
  Clock::time_point start;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.count = count_;
    out.sum_us = sum_us_;
    out.max_us = max_us_;
    out.samples_us = reservoir_us_;
    start = start_;
  }
  out.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return out;
}

void LatencyStats::merge_export(const Export& other) {
  // Remote steady clocks are meaningless here; anchor the remote start
  // so elapsed time (and therefore wall-clock throughput) is preserved.
  const Clock::time_point other_start =
      Clock::now() - std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             std::max(0.0, other.elapsed_seconds)));
  merge_state(other.samples_us, other.count, other.sum_us, other.max_us,
              other_start);
}

void LatencyStats::merge_state(const std::vector<double>& other_samples,
                               std::size_t other_count, double other_sum,
                               double other_max,
                               Clock::time_point other_start) {
  if (other_count == 0) return;

  const std::lock_guard<std::mutex> lock(mutex_);
  // The union is the complete merged sample only when BOTH sides still
  // hold every sample they ever recorded (a saturated side's reservoir is
  // already a subsample standing for count/size requests each, and may
  // not be concatenated unweighted) and the union fits this reservoir.
  const bool exact = count_ == reservoir_us_.size() &&
                     other_count == other_samples.size() &&
                     reservoir_us_.size() + other_samples.size() <= capacity_;
  // Per-sample weight: how many recorded requests one reservoir entry
  // stands for on each side.
  const double weight_this =
      reservoir_us_.empty()
          ? 0.0
          : static_cast<double>(count_) /
                static_cast<double>(reservoir_us_.size());
  const double weight_other = static_cast<double>(other_count) /
                              static_cast<double>(other_samples.size());
  count_ += other_count;
  sum_us_ += other_sum;
  max_us_ = std::max(max_us_, other_max);
  start_ = std::min(start_, other_start);
  if (exact) {
    reservoir_us_.insert(reservoir_us_.end(), other_samples.begin(),
                         other_samples.end());
    return;
  }
  // Weighted sampling without replacement (Efraimidis–Spirakis A-ES):
  // keep the entries with the largest u^(1/w) keys, so each side
  // contributes in proportion to the request count it represents. The
  // kept size is the effective sample size total/max_weight — after the
  // draw every retained entry stands for roughly max_weight requests, so
  // snapshot percentiles over the (unweighted) reservoir stay consistent
  // even when one side's entries each represent far more traffic.
  std::vector<std::pair<double, double>> keyed;  // (key, sample)
  keyed.reserve(reservoir_us_.size() + other_samples.size());
  for (const double us : reservoir_us_) {
    keyed.emplace_back(std::pow(next_unit(rng_state_), 1.0 / weight_this),
                       us);
  }
  for (const double us : other_samples) {
    keyed.emplace_back(std::pow(next_unit(rng_state_), 1.0 / weight_other),
                       us);
  }
  const double max_weight = std::max(weight_this, weight_other);
  const std::size_t effective = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(count_) / max_weight));
  const std::size_t keep = std::min({capacity_, keyed.size(), effective});
  if (keep < keyed.size()) {
    std::nth_element(
        keyed.begin(), keyed.begin() + static_cast<std::ptrdiff_t>(keep - 1),
        keyed.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
  }
  reservoir_us_.clear();
  for (std::size_t i = 0; i < keep; ++i) {
    reservoir_us_.push_back(keyed[i].second);
  }
}

void LatencyStats::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  reservoir_us_.clear();
  count_ = 0;
  sum_us_ = 0.0;
  max_us_ = 0.0;
  start_ = Clock::now();
}

LatencyStats::Snapshot LatencyStats::snapshot() const {
  Snapshot snap;
  std::vector<double> samples;
  Clock::time_point start;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    samples = reservoir_us_;
    start = start_;
    snap.count = count_;
    snap.mean_us = count_ > 0 ? sum_us_ / static_cast<double>(count_) : 0.0;
    snap.max_us = max_us_;
  }
  snap.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (snap.elapsed_seconds > 0.0) {
    snap.requests_per_second =
        static_cast<double>(snap.count) / snap.elapsed_seconds;
  }
  if (samples.empty()) return snap;
  snap.p50_us = percentile(samples, 50.0);
  snap.p95_us = percentile(samples, 95.0);
  snap.p99_us = percentile(samples, 99.0);
  return snap;
}

}  // namespace muffin::serve
