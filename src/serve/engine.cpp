#include "serve/engine.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/parallel_for.h"
#include "data/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace muffin::serve {

namespace {

/// Process-wide engine metrics (see src/obs/metrics.h for the idiom:
/// resolve once, then every record is a single relaxed atomic op). These
/// aggregate over every engine replica in the process; the per-engine
/// atomics behind counters() stay the per-replica source of truth.
struct EngineMetrics {
  obs::Counter& requests = obs::registry().counter("engine.requests");
  obs::Counter& batches = obs::registry().counter("engine.batches");
  obs::Counter& cache_hits = obs::registry().counter("engine.cache_hits");
  obs::Counter& cache_misses = obs::registry().counter("engine.cache_misses");
  obs::Counter& consensus =
      obs::registry().counter("engine.consensus_short_circuits");
  obs::Counter& head_evaluations =
      obs::registry().counter("engine.head_evaluations");
  obs::Histogram& batch_size = obs::registry().histogram(
      "engine.batch_size", obs::batch_size_buckets());
  obs::Histogram& latency_us = obs::registry().histogram(
      "engine.latency_us", obs::latency_us_buckets());
  /// Requests rejected at admission (Overloaded), and how long the
  /// rejection itself took — the shed path's whole point is that this
  /// histogram sits far below engine.latency_us.
  obs::Counter& shed = obs::registry().counter("serve.shed");
  obs::Histogram& shed_latency_us = obs::registry().histogram(
      "serve.shed_latency_us", obs::latency_us_buckets());
  /// Requests dropped unscored because they overstayed config.deadline.
  obs::Counter& deadline_drops =
      obs::registry().counter("serve.deadline_drops");
  /// Model lifecycle: hot-swaps performed (process-wide) and the version
  /// most recently published by any engine in this process. For the
  /// one-engine-per-process shard server this gauge IS the shard's live
  /// version; a multi-engine process reads per-engine model_version().
  obs::Counter& swaps = obs::registry().counter("serve.swaps_total");
  obs::Gauge& model_version = obs::registry().gauge("serve.model_version");

  static EngineMetrics& get() {
    static EngineMetrics metrics;
    return metrics;
  }
};

obs::Gauge& memo_bytes_gauge() {
  static obs::Gauge& gauge =
      obs::registry().gauge("serve.result_memo_bytes");
  return gauge;
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<const core::FusedModel> model,
                                 EngineConfig config)
    : registry_(std::move(model), config.initial_model_version),
      config_(config),
      num_classes_(0),
      pool_(common::global_pool()),
      batcher_({config.max_batch, config.max_delay, config.max_queue,
                "engine.batcher"}),
      memo_mode_(tensor::active_quant_mode()) {
  MUFFIN_REQUIRE(config_.workers > 0, "engine needs at least one worker");
  const std::shared_ptr<const ModelSnapshot> snapshot = registry_.current();
  num_classes_ = snapshot->model->num_classes();
  // Head clones keep each worker's weights hot in its own cache
  // hierarchy. Batches can land on any worker of the process-wide pool,
  // but the clone count is budgeted by config.workers (not the host
  // width) so a many-shard router on a wide machine does not multiply
  // head memory by hardware_concurrency; workers map onto clones by
  // modulo, and sharing a clone is safe because inference forwards are
  // const and cache-free. Slots track the version their clone came from
  // so a hot-swap re-clones lazily (head_for).
  const std::size_t clones = std::min(pool_.size(), config_.workers);
  head_slots_.reserve(clones);
  for (std::size_t w = 0; w < clones; ++w) {
    auto slot = std::make_unique<HeadSlot>();
    slot->version = snapshot->version;
    slot->head = std::make_shared<const nn::Mlp>(snapshot->model->head());
    head_slots_.push_back(std::move(slot));
  }
  EngineMetrics::get().model_version.set(
      static_cast<std::int64_t>(snapshot->version));
  dispatcher_ = std::thread([this]() { dispatch_loop(); });
}

InferenceEngine::~InferenceEngine() {
  shutdown();
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  memo_bytes_gauge().sub(static_cast<std::int64_t>(memo_bytes_));
  memo_bytes_ = 0;
}

std::future<Prediction> InferenceEngine::submit(const data::Record& record) {
  MUFFIN_REQUIRE(!stopped_.load(), "cannot submit to a stopped engine");
  // Before any accounting: an injected submit fault must look like the
  // submit never happened (the router's failover path depends on that).
  fail::maybe_fail("serve.engine.submit");
  Request request{record, Clock::now(), {},
                  obs::Tracer::instance().sample()};
  std::future<Prediction> future = request.promise.get_future();
  // Count before publishing to the batcher: a worker may dequeue, score,
  // and record latency for this request the moment it is pushed, and
  // observers assert latency.count <= counters().requests mid-flight.
  requests_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::get().requests.inc();
  try {
    batcher_.push(std::move(request));
  } catch (const Overloaded&) {
    // Admission bound reached: the request never entered the engine.
    requests_.fetch_sub(1, std::memory_order_relaxed);
    EngineMetrics& metrics = EngineMetrics::get();
    metrics.shed.inc();
    metrics.shed_latency_us.observe(
        std::chrono::duration<double, std::micro>(Clock::now() -
                                                  request.enqueued)
            .count());
    throw;
  } catch (...) {
    // push throws if shutdown() closed the batcher between the stopped_
    // check and here: the request never entered the engine, so un-count it.
    requests_.fetch_sub(1, std::memory_order_relaxed);
    throw;
  }
  return future;
}

Prediction InferenceEngine::predict(const data::Record& record) {
  return submit(record).get();
}

std::vector<std::future<Prediction>> InferenceEngine::submit_batch(
    std::span<const data::Record> records) {
  std::vector<data::Record> copies(records.begin(), records.end());
  return submit_batch(std::move(copies));
}

std::vector<std::future<Prediction>> InferenceEngine::submit_batch(
    std::vector<data::Record>&& records) {
  MUFFIN_REQUIRE(!stopped_.load(), "cannot submit to a stopped engine");
  fail::maybe_fail("serve.engine.submit");
  const std::size_t n = records.size();
  std::vector<Request> requests;
  requests.reserve(n);
  std::vector<std::future<Prediction>> futures;
  futures.reserve(n);
  const Clock::time_point now = Clock::now();
  obs::Tracer& tracer = obs::Tracer::instance();
  for (data::Record& record : records) {
    Request request{std::move(record), now, {}, tracer.sample()};
    futures.push_back(request.promise.get_future());
    requests.push_back(std::move(request));
  }
  // Same count-before-publish ordering as submit(), for the same reason.
  requests_.fetch_add(n, std::memory_order_relaxed);
  EngineMetrics::get().requests.inc(n);
  try {
    batcher_.push_many(std::move(requests));
  } catch (const Overloaded&) {
    // Shed whole: push_many admits all records or none.
    requests_.fetch_sub(n, std::memory_order_relaxed);
    EngineMetrics& metrics = EngineMetrics::get();
    metrics.shed.inc(n);
    metrics.shed_latency_us.observe(
        std::chrono::duration<double, std::micro>(Clock::now() - now).count());
    throw;
  } catch (...) {
    // push_many is all-or-nothing: on a shutdown race no record entered
    // the engine, so un-count the whole span.
    requests_.fetch_sub(n, std::memory_order_relaxed);
    throw;
  }
  return futures;
}

std::vector<Prediction> collect_all_or_error(
    std::vector<std::future<Prediction>> futures) {
  std::vector<Prediction> predictions;
  predictions.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      predictions.push_back(futures[i].get());
    } catch (...) {
      // Quiesce everything still in flight before the error propagates:
      // the caller must be free to shut down or resubmit immediately.
      for (std::size_t j = i + 1; j < futures.size(); ++j) {
        futures[j].wait();
      }
      throw;
    }
  }
  return predictions;
}

std::vector<Prediction> InferenceEngine::predict_batch(
    std::span<const data::Record> records) {
  // submit_batch is atomic, so there is no partially-submitted prefix to
  // quiesce on a submit failure; the all-or-error rule (serve/router.h)
  // is enforced by collect_all_or_error, where per-record results fail.
  return collect_all_or_error(submit_batch(records));
}

void InferenceEngine::shutdown() {
  if (stopped_.exchange(true)) return;
  batcher_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  std::unique_lock<std::mutex> lock(inflight_mutex_);
  inflight_done_.wait(lock, [this]() { return inflight_batches_ == 0; });
}

std::uint64_t InferenceEngine::swap_model(
    std::shared_ptr<const core::FusedModel> model, std::uint64_t version) {
  MUFFIN_REQUIRE(model != nullptr, "cannot swap in a null model");
  MUFFIN_REQUIRE(model->num_classes() == num_classes_,
                 "swapped model changes the serving shape (" +
                     std::to_string(model->num_classes()) + " classes vs " +
                     std::to_string(num_classes_) + ")");
  // Chaos seam: an injected error models a corrupt artifact discovered
  // at publish time — the swap fails atomically, traffic never notices.
  fail::maybe_fail("serve.engine.swap");
  const std::shared_ptr<const ModelSnapshot> installed =
      registry_.publish(std::move(model), version);
  swaps_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics& metrics = EngineMetrics::get();
  metrics.swaps.inc();
  metrics.model_version.set(static_cast<std::int64_t>(installed->version));
  // No flush, no pause: in-flight batches hold their own snapshot pins,
  // worker head slots refresh lazily on their next batch (head_for), and
  // version-keyed memo entries from older versions die on first lookup.
  return installed->version;
}

std::shared_ptr<const nn::Mlp> InferenceEngine::head_for(
    std::size_t worker, const ModelSnapshot& snapshot) {
  HeadSlot& slot =
      *head_slots_[worker == ThreadPool::npos ? 0
                                              : worker % head_slots_.size()];
  const std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.version == snapshot.version) return slot.head;
  if (slot.version < snapshot.version) {
    // Lazy epoch advance: first batch on the new version pays one head
    // clone; later batches on this slot reuse it. The displaced clone
    // stays alive for any batch still holding its shared_ptr.
    slot.head = std::make_shared<const nn::Mlp>(snapshot.model->head());
    slot.version = snapshot.version;
    return slot.head;
  }
  // A batch that pinned an older version than the slot raced a swap:
  // score it on its snapshot's own head rather than rolling the slot
  // backwards (const inference forwards are thread-safe).
  return {snapshot.model, &snapshot.model->head()};
}

EngineCounters InferenceEngine::counters() const {
  EngineCounters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.batches = batches_.load(std::memory_order_relaxed);
  counters.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  counters.consensus_short_circuits =
      consensus_short_circuits_.load(std::memory_order_relaxed);
  counters.head_evaluations =
      head_evaluations_.load(std::memory_order_relaxed);
  return counters;
}

void InferenceEngine::dispatch_loop() {
  for (;;) {
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      ++inflight_batches_;
    }
    // The future is intentionally dropped: results and failures reach the
    // caller through the per-request promises, not the job future.
    (void)pool_.submit([this, b = std::move(batch)]() mutable {
      process_batch(std::move(b));
    });
  }
}

void InferenceEngine::process_batch(std::vector<Request> batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics& metrics = EngineMetrics::get();
  // Deadline propagation: requests that overstayed their deadline in the
  // queue are failed here, before any scoring work is spent on them. A
  // backlogged engine thus spends its cycles only on answers someone is
  // still waiting for.
  if (config_.deadline.count() > 0) {
    const Clock::time_point cutoff = Clock::now() - config_.deadline;
    std::vector<Request> live;
    live.reserve(batch.size());
    for (Request& request : batch) {
      if (request.enqueued < cutoff) {
        metrics.deadline_drops.inc();
        request.promise.set_exception(std::make_exception_ptr(
            Error("request deadline exceeded before scoring")));
      } else {
        live.push_back(std::move(request));
      }
    }
    batch = std::move(live);
    if (batch.empty()) {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      --inflight_batches_;
      inflight_done_.notify_all();
      return;
    }
  }
  const std::size_t n = batch.size();
  metrics.batches.inc();
  metrics.batch_size.observe(static_cast<double>(n));
  // Tracing: one serve.batch span if any request in the batch was picked
  // by the edge sampler; sampled requests additionally emit their queue
  // wait (enqueue -> batch formation) and end-to-end serve.request spans.
  obs::Tracer& tracer = obs::Tracer::instance();
  bool any_traced = false;
  for (const Request& request : batch) any_traced |= request.traced;
  const obs::TraceSpan batch_span(
      "serve.batch", any_traced,
      any_traced ? "\"batch_size\":" + std::to_string(n) : std::string());
  if (any_traced) {
    const double batch_start_us = tracer.now_us();
    for (const Request& request : batch) {
      if (!request.traced) continue;
      const double enqueued_us = tracer.to_us(request.enqueued);
      tracer.record("serve.queue", enqueued_us, batch_start_us - enqueued_us,
                    "\"uid\":" + std::to_string(request.record.uid));
    }
  }
  std::vector<Prediction> results(n);
  std::size_t delivered = 0;
  // Epoch pin: this batch scores — and is memoized — entirely on one
  // model snapshot, no matter how many swaps land while it runs. The
  // shared_ptr hold keeps the pinned version fully alive until the last
  // in-flight batch on it completes.
  const std::shared_ptr<const ModelSnapshot> pinned = registry_.current();
  try {
    // Chaos seam: an injected error here fails the whole batch through
    // the catch-all below (the all-or-error contract under test); an
    // injected delay models a slow scoring pass.
    fail::maybe_fail("serve.engine.score");

    // 1. Serve repeats from the result memo. Lookups are keyed by
    // (model version, uid): entries written by other versions miss.
    std::vector<std::size_t> misses;
    misses.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (cache_lookup(batch[i].record.uid, pinned->version, results[i])) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        metrics.cache_hits.inc();
      } else {
        misses.push_back(i);
      }
    }
    metrics.cache_misses.inc(misses.size());

    // 2. Body scores for the misses as one record span through the shared
    // gather (every body model's score_batch override over the whole
    // sub-batch, written in the ScoreCache gather layout). score_batch
    // takes a contiguous span, so the miss records are copied out of
    // their Request wrappers once per batch — amortized across all body
    // models and small next to the scoring itself.
    if (!misses.empty()) {
      std::vector<data::Record> miss_records;
      miss_records.reserve(misses.size());
      for (const std::size_t i : misses) {
        miss_records.push_back(batch[i].record);
      }
      const core::FusedModel& model = *pinned->model;
      const std::size_t body_size = model.body().size();
      const tensor::Matrix gathered = [&]() {
        const obs::TraceSpan span(
            "serve.score_batch", any_traced,
            any_traced ? "\"rows\":" + std::to_string(misses.size())
                       : std::string());
        return core::gather_body_scores(model.body(), num_classes_,
                                        miss_records);
      }();

      // 3. Row-wise consensus gate + one batched head forward over the
      // disagreement rows, on this worker's head clone (re-cloned lazily
      // at epoch advance). Bit-identical to FusedModel::scores by
      // construction: fuse_gathered_batch rows match core::fuse_gathered,
      // and worker heads are value copies of the pinned version's head.
      const std::shared_ptr<const nn::Mlp> head =
          head_for(ThreadPool::current_worker(), *pinned);
      core::FusedBatch fused = [&]() {
        const obs::TraceSpan span("serve.fuse", any_traced);
        return core::fuse_gathered_batch(gathered, *head, body_size,
                                         num_classes_,
                                         model.head_only_on_disagreement());
      }();
      const std::size_t consensus_rows = misses.size() - fused.head_rows;
      consensus_short_circuits_.fetch_add(consensus_rows,
                                          std::memory_order_relaxed);
      head_evaluations_.fetch_add(fused.head_rows,
                                  std::memory_order_relaxed);
      metrics.consensus.inc(consensus_rows);
      metrics.head_evaluations.inc(fused.head_rows);
      for (std::size_t k = 0; k < misses.size(); ++k) {
        const std::size_t i = misses[k];
        Prediction& prediction = results[i];
        const auto row = fused.scores.row(k);
        prediction.scores.assign(row.begin(), row.end());
        prediction.consensus = fused.consensus[k];
        prediction.model_version = pinned->version;
        // Canonicalize-on-miss: the reply carries the dequantized form of
        // what the memo stores (a no-op when the memo mode is off), so a
        // later memo hit for this uid replies bit-identically.
        MemoEntry entry = canonicalize_and_pack(prediction);
        entry.version = pinned->version;
        cache_store(batch[i].record.uid, std::move(entry));
      }
    }

    // 4. Deliver results and account latency.
    const Clock::time_point now = Clock::now();
    const obs::TraceSpan reply_span("serve.reply", any_traced);
    const double now_us = any_traced ? tracer.to_us(now) : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      latency_.record(now - batch[i].enqueued);
      metrics.latency_us.observe(
          std::chrono::duration<double, std::micro>(now - batch[i].enqueued)
              .count());
      if (batch[i].traced) {
        const double enqueued_us = tracer.to_us(batch[i].enqueued);
        tracer.record("serve.request", enqueued_us, now_us - enqueued_us,
                      "\"uid\":" + std::to_string(batch[i].record.uid) +
                          ",\"cached\":" + (results[i].cached ? "true"
                                                             : "false"));
      }
      batch[i].promise.set_value(std::move(results[i]));
      ++delivered;
    }
  } catch (...) {
    for (std::size_t i = delivered; i < n; ++i) {
      batch[i].promise.set_exception(std::current_exception());
    }
  }
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    --inflight_batches_;
    // Notify while holding the mutex: shutdown() destroys this engine as
    // soon as its wait observes zero in-flight batches, so an unlocked
    // notify here could land on an already-destroyed condition variable
    // (caught by TSan as pthread_cond_broadcast vs pthread_cond_destroy).
    inflight_done_.notify_all();
  }
}

std::size_t InferenceEngine::cache_entries() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_index_.size();
}

bool InferenceEngine::cache_contains(std::uint64_t uid) const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_index_.find(uid) != cache_index_.end();
}

std::size_t InferenceEngine::MemoEntry::payload_bytes() const {
  return f64.size() * sizeof(double) + bf16.size() * sizeof(std::uint16_t) +
         i8.size() * sizeof(std::int8_t) +
         (i8.empty() ? 0 : sizeof(double));  // the per-vector int8 scale
}

InferenceEngine::MemoEntry InferenceEngine::canonicalize_and_pack(
    Prediction& prediction) const {
  MemoEntry entry;
  entry.consensus = prediction.consensus;
  tensor::Vector& scores = prediction.scores;
  switch (memo_mode_) {
    case tensor::QuantMode::Off: {
      entry.f64.assign(scores.begin(), scores.end());
      break;
    }
    case tensor::QuantMode::Bf16: {
      entry.bf16.resize(scores.size());
      for (std::size_t c = 0; c < scores.size(); ++c) {
        entry.bf16[c] = tensor::bf16_from_double(scores[c]);
        scores[c] = tensor::bf16_to_double(entry.bf16[c]);
      }
      break;
    }
    case tensor::QuantMode::Int8: {
      // Quantize exactly once from the float scores: the canonical reply
      // is q * scale, the same product a memo hit recomputes — nothing is
      // ever re-quantized, so no idempotence argument is needed.
      entry.scale = tensor::i8_scale(scores);
      entry.i8.resize(scores.size());
      for (std::size_t c = 0; c < scores.size(); ++c) {
        entry.i8[c] = tensor::i8_from_double(scores[c], entry.scale);
        scores[c] = tensor::i8_to_double(entry.i8[c], entry.scale);
      }
      break;
    }
  }
  // Argmax of the canonical scores, so predicted == argmax(scores) holds
  // for the reply and for every future memo hit alike.
  prediction.predicted = tensor::argmax(scores);
  entry.predicted = static_cast<std::uint32_t>(prediction.predicted);
  return entry;
}

bool InferenceEngine::cache_lookup(std::uint64_t uid, std::uint64_t version,
                                   Prediction& out) {
  if (config_.result_cache_capacity == 0) return false;
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_index_.find(uid);
  if (it == cache_index_.end()) return false;
  const MemoEntry& entry = it->second->second;
  // Version key: an entry scored by a different model version is a miss
  // (no splice — a stale entry earns no recency), and the rescore that
  // follows replaces it. This is the stale-score-leak fix: no pre-swap
  // score can ever be served post-swap.
  if (entry.version != version) return false;
  cache_order_.splice(cache_order_.begin(), cache_order_, it->second);
  out.predicted = entry.predicted;
  out.consensus = entry.consensus;
  out.cached = true;
  out.model_version = entry.version;
  switch (memo_mode_) {
    case tensor::QuantMode::Off: {
      out.scores.assign(entry.f64.begin(), entry.f64.end());
      break;
    }
    case tensor::QuantMode::Bf16: {
      out.scores.resize(entry.bf16.size());
      for (std::size_t c = 0; c < entry.bf16.size(); ++c) {
        out.scores[c] = tensor::bf16_to_double(entry.bf16[c]);
      }
      break;
    }
    case tensor::QuantMode::Int8: {
      out.scores.resize(entry.i8.size());
      for (std::size_t c = 0; c < entry.i8.size(); ++c) {
        out.scores[c] = tensor::i8_to_double(entry.i8[c], entry.scale);
      }
      break;
    }
  }
  return true;
}

void InferenceEngine::cache_store(std::uint64_t uid, MemoEntry entry) {
  if (config_.result_cache_capacity == 0) return;
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  const auto it = cache_index_.find(uid);
  if (it != cache_index_.end()) {
    MemoEntry& existing = it->second->second;
    if (existing.version >= entry.version) {
      // Another batch raced us to the same record on the same (or a
      // newer) version; keep the existing entry.
      cache_order_.splice(cache_order_.begin(), cache_order_, it->second);
      return;
    }
    // Stale entry from a pre-swap version: replace it in place.
    const std::size_t old_bytes = existing.payload_bytes();
    const std::size_t new_bytes = entry.payload_bytes();
    existing = std::move(entry);
    memo_bytes_ += new_bytes;
    memo_bytes_ -= old_bytes;
    memo_bytes_gauge().add(static_cast<std::int64_t>(new_bytes) -
                           static_cast<std::int64_t>(old_bytes));
    cache_order_.splice(cache_order_.begin(), cache_order_, it->second);
    return;
  }
  const std::size_t added = entry.payload_bytes();
  cache_order_.emplace_front(uid, std::move(entry));
  cache_index_.emplace(uid, cache_order_.begin());
  memo_bytes_ += added;
  memo_bytes_gauge().add(static_cast<std::int64_t>(added));
  while (cache_order_.size() > config_.result_cache_capacity) {
    const std::size_t evicted = cache_order_.back().second.payload_bytes();
    memo_bytes_ -= evicted;
    memo_bytes_gauge().sub(static_cast<std::int64_t>(evicted));
    cache_index_.erase(cache_order_.back().first);
    cache_order_.pop_back();
  }
}

std::size_t InferenceEngine::memo_bytes() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return memo_bytes_;
}

std::uint64_t reload_head_artifact(InferenceEngine& engine,
                                   const std::string& path) {
  const data::Artifact artifact = data::Artifact::map_file(path);
  const std::shared_ptr<const core::FusedModel> current = engine.model();
  // Same body, same fusing gate, new head: the artifact's keepalive
  // travels inside the mapped Mlp, so the mapping outlives this scope.
  auto next = std::make_shared<core::FusedModel>(
      current->name(), current->body(),
      nn::Mlp::map_artifact(artifact, "head"),
      current->head_only_on_disagreement());
  return engine.swap_model(std::move(next), artifact.model_version());
}

}  // namespace muffin::serve
