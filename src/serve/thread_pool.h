// Compatibility re-export: the worker pool moved to common/thread_pool.h
// so the tensor kernel layer can partition work over it (via
// common/parallel_for.h) without the low-level tensor code depending on
// the serving runtime. serve::ThreadPool remains the canonical name used
// by the serving tier and its tests.
#pragma once

#include "common/thread_pool.h"

namespace muffin::serve {

using ThreadPool = common::ThreadPool;

}  // namespace muffin::serve
