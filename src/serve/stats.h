// Serving-side latency and throughput accounting.
//
// LatencyStats accumulates per-request latencies (thread-safe) and reports
// the numbers a serving operator watches: p50/p95/p99 tail latencies, mean
// and max, and sustained throughput since the last reset. Count, mean and
// max are exact over every recorded request; percentiles come from a
// bounded uniform reservoir (Vitter's Algorithm R), so memory stays
// constant no matter how long the serving process lives. Below the
// reservoir capacity the sample is complete and percentiles are exact too.
//
// Sharded serving adds `merge`: fold another instance's accounting into
// this one, so a router can present one aggregate view over per-replica
// stats. Count, mean and max merge exactly; merged percentiles are exact
// while both sides' reservoirs are complete (no side has recorded past
// its capacity) and their union fits this reservoir, and come from a
// count-weighted subsample (Efraimidis–Spirakis) beyond that. Within the
// exact regime merge is commutative and associative (the percentile of a
// sample set does not depend on concatenation order), which is what makes
// shard-then-aggregate report the same numbers as one global collector.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace muffin::serve {

/// Nearest-rank percentile of an unsorted sample set, q in [0, 100].
[[nodiscard]] double percentile(std::vector<double> samples, double q);

class LatencyStats {
 public:
  /// `reservoir_capacity` bounds the percentile sample (and the memory
  /// footprint); count/mean/max stay exact regardless.
  explicit LatencyStats(std::size_t reservoir_capacity = 1 << 16);

  /// Record one request latency; safe to call concurrently.
  void record(std::chrono::nanoseconds latency);

  /// Fold `other`'s accounting into this instance (other is unchanged).
  /// Safe against concurrent record/snapshot on either side; merging an
  /// instance into itself is an error. The throughput clock becomes the
  /// earlier of the two start times, so an aggregate over replicas that
  /// ran in parallel reports wall-clock throughput, not summed time.
  ///
  /// Intended pattern: fold shards into a scratch instance, snapshot,
  /// discard (ShardRouter::aggregate_latency). Continuing to record()
  /// into an instance after a non-exact merge (one where a side had
  /// overflowed its reservoir) is safe but mixes per-entry sample
  /// weights, so subsequent percentiles lean toward post-merge traffic;
  /// count/mean/max stay exact regardless.
  void merge(const LatencyStats& other);

  /// Serializable accounting state: exact totals plus the percentile
  /// reservoir. This is what the Stats RPC ships — a server exports its
  /// engine's authoritative stats, the client imports them with
  /// merge_export, and percentile merging behaves exactly as if the two
  /// LatencyStats instances had been merged in one process. Clocks are
  /// not comparable across processes, so the start time travels as
  /// elapsed seconds and is re-anchored against the importer's clock.
  struct Export {
    std::size_t count = 0;
    double sum_us = 0.0;
    double max_us = 0.0;
    double elapsed_seconds = 0.0;
    std::vector<double> samples_us;  ///< the reservoir (uniform subsample)
  };

  [[nodiscard]] Export to_export() const;

  /// Fold exported state into this instance; merge() semantics, with the
  /// remote start time reconstructed as now - elapsed_seconds.
  void merge_export(const Export& other);

  /// Drop all samples and restart the throughput clock.
  void reset();

  struct Snapshot {
    std::size_t count = 0;               ///< exact, all requests
    double mean_us = 0.0;                ///< exact, all requests
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;                 ///< exact, all requests
    double elapsed_seconds = 0.0;        ///< since construction/reset
    double requests_per_second = 0.0;    ///< count / elapsed
  };

  [[nodiscard]] Snapshot snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// The locked merge body shared by merge() and merge_export(): fold
  /// (samples, count, sum, max, start) — a copied-out peer state — in.
  void merge_state(const std::vector<double>& other_samples,
                   std::size_t other_count, double other_sum,
                   double other_max, Clock::time_point other_start);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<double> reservoir_us_;
  std::size_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
  std::uint64_t rng_state_;  ///< splitmix64 stream for Algorithm R
  Clock::time_point start_;
};

}  // namespace muffin::serve
