// Serving-side latency and throughput accounting.
//
// LatencyStats accumulates per-request latencies (thread-safe) and reports
// the numbers a serving operator watches: p50/p95/p99 tail latencies, mean
// and max, and sustained throughput since the last reset. Count, mean and
// max are exact over every recorded request; percentiles come from a
// bounded uniform reservoir (Vitter's Algorithm R), so memory stays
// constant no matter how long the serving process lives. Below the
// reservoir capacity the sample is complete and percentiles are exact too.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace muffin::serve {

/// Nearest-rank percentile of an unsorted sample set, q in [0, 100].
[[nodiscard]] double percentile(std::vector<double> samples, double q);

class LatencyStats {
 public:
  /// `reservoir_capacity` bounds the percentile sample (and the memory
  /// footprint); count/mean/max stay exact regardless.
  explicit LatencyStats(std::size_t reservoir_capacity = 1 << 16);

  /// Record one request latency; safe to call concurrently.
  void record(std::chrono::nanoseconds latency);

  /// Drop all samples and restart the throughput clock.
  void reset();

  struct Snapshot {
    std::size_t count = 0;               ///< exact, all requests
    double mean_us = 0.0;                ///< exact, all requests
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;                 ///< exact, all requests
    double elapsed_seconds = 0.0;        ///< since construction/reset
    double requests_per_second = 0.0;    ///< count / elapsed
  };

  [[nodiscard]] Snapshot snapshot() const;

 private:
  using Clock = std::chrono::steady_clock;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<double> reservoir_us_;
  std::size_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
  std::uint64_t rng_state_;  ///< splitmix64 stream for Algorithm R
  Clock::time_point start_;
};

}  // namespace muffin::serve
