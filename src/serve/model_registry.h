// Versioned, epoch-guarded model ownership for the serving stack.
//
// Production serving never holds "the model" — it holds *a version of*
// the model, and versions change under live load. The registry makes
// that explicit: publishers install a new FusedModel under a strictly
// increasing version number, and readers pin an immutable snapshot for
// the duration of one unit of work (a batch, a retrain round).
//
// The concurrency scheme is RCU-by-shared_ptr: `current()` hands out a
// `shared_ptr<const ModelSnapshot>` under a short mutex, and holding
// that pointer *is* the epoch pin — the snapshot (and the FusedModel it
// owns) stays fully alive until the last in-flight holder drops it, no
// matter how many publishes happen in between. Publishing is a pointer
// swap; it never waits for readers, so a hot-swap cannot stall a batch
// and a batch cannot stall a hot-swap. Readers of different pins may
// run concurrently: all model state is const after construction.
//
// Version monotonicity is the rollback guard: an explicit publish
// version must exceed the current one (a stale artifact cannot roll a
// fleet backwards), and version 0 means "assign the next version" —
// the path the retrain loop and unstamped artifacts use.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/error.h"
#include "core/fused.h"

namespace muffin::serve {

/// One immutable published model: the fused model plus the monotonic
/// lifecycle version it was installed under. Holding the snapshot pins
/// both (epoch semantics).
struct ModelSnapshot {
  std::shared_ptr<const core::FusedModel> model;
  std::uint64_t version = 0;
};

class ModelRegistry {
 public:
  /// Install the initial model under `version` (must be >= 1).
  ModelRegistry(std::shared_ptr<const core::FusedModel> model,
                std::uint64_t version) {
    MUFFIN_REQUIRE(model != nullptr, "model registry needs a model");
    MUFFIN_REQUIRE(version >= 1, "model versions start at 1");
    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->model = std::move(model);
    snapshot->version = version;
    current_ = std::move(snapshot);
  }

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Pin the live snapshot. The returned pointer is the epoch guard:
  /// everything scored against it must read the model through it.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> current() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }

  /// The live version number (for display; racing a publish is benign).
  [[nodiscard]] std::uint64_t version() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return current_->version;
  }

  /// Publish `model` under `version` and return the installed snapshot.
  /// `version == 0` auto-assigns current + 1; an explicit version must
  /// be strictly greater than the current one (monotonic rollback
  /// guard). In-flight readers of older snapshots are unaffected.
  std::shared_ptr<const ModelSnapshot> publish(
      std::shared_ptr<const core::FusedModel> model,
      std::uint64_t version = 0) {
    MUFFIN_REQUIRE(model != nullptr, "cannot publish a null model");
    auto snapshot = std::make_shared<ModelSnapshot>();
    snapshot->model = std::move(model);
    const std::lock_guard<std::mutex> lock(mutex_);
    MUFFIN_REQUIRE(version == 0 || version > current_->version,
                   "model version " + std::to_string(version) +
                       " does not advance the registry (current " +
                       std::to_string(current_->version) + ")");
    snapshot->version = version == 0 ? current_->version + 1 : version;
    current_ = snapshot;
    return snapshot;
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ModelSnapshot> current_;
};

}  // namespace muffin::serve
