#include "serve/retrain.h"

#include <numeric>
#include <utility>

#include "common/error.h"
#include "models/pool.h"
#include "obs/metrics.h"
#include "tensor/quant.h"

namespace muffin::serve {

namespace {

obs::Counter& retrain_rounds_counter() {
  static obs::Counter& counter =
      obs::registry().counter("serve.retrain_rounds");
  return counter;
}

}  // namespace

LabelBuffer::LabelBuffer(std::size_t capacity) : capacity_(capacity) {
  MUFFIN_REQUIRE(capacity > 0, "label buffer needs a non-zero capacity");
}

void LabelBuffer::push(const data::Record& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(record);
  ++pushed_;
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::size_t LabelBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::size_t LabelBuffer::pushed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

std::vector<data::Record> LabelBuffer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

HeadRetrainer::HeadRetrainer(InferenceEngine& engine,
                             const data::Dataset& reference,
                             RetrainConfig config)
    : engine_(engine),
      config_(config),
      dataset_name_(reference.name() + ".live"),
      num_classes_(reference.num_classes()),
      schema_(reference.schema()) {
  MUFFIN_REQUIRE(config_.min_records > 0,
                 "retrain needs a non-zero min_records");
  unprivileged_.reserve(schema_.size());
  for (std::size_t a = 0; a < schema_.size(); ++a) {
    std::vector<bool> flags(schema_[a].group_count(), false);
    for (const std::size_t g : reference.unprivileged_groups(a)) {
      flags[g] = true;
    }
    unprivileged_.push_back(std::move(flags));
  }
}

std::uint64_t HeadRetrainer::run_round(const LabelBuffer& buffer) {
  std::vector<data::Record> records = buffer.snapshot();
  if (records.size() < config_.min_records) return 0;

  // Pin the serving model for the whole round: the body we score with
  // and the structure we train against stay consistent even if an
  // operator rollout lands mid-round (detected at publish below).
  const std::shared_ptr<const core::FusedModel> pinned = engine_.model();
  const std::uint64_t pinned_version = engine_.model_version();

  data::Dataset live(dataset_name_, num_classes_, schema_);
  live.reserve(records.size());
  for (data::Record& record : records) live.add_record(std::move(record));
  for (std::size_t a = 0; a < unprivileged_.size(); ++a) {
    live.set_unprivileged(a, unprivileged_[a]);
  }

  // The proxy carries the fairness weighting; without any unprivileged
  // records there is nothing to train toward — skip, don't publish.
  const core::ProxyDataset proxy = core::build_proxy(live, config_.proxy);
  if (proxy.size() == 0) return 0;

  models::ModelPool pool;
  const std::vector<models::ModelPtr>& body = pinned->body();
  for (const models::ModelPtr& model : body) pool.add(model);
  // Full-precision cache: the trainer consumes exact body scores; the
  // version tag marks which serving epoch the scores were drawn from.
  const core::ScoreCache cache(pool, live, tensor::QuantMode::Off,
                               pinned_version);

  core::FusingStructure structure;
  structure.model_indices.resize(body.size());
  std::iota(structure.model_indices.begin(), structure.model_indices.end(),
            std::size_t{0});
  structure.head_spec = pinned->head().spec();

  nn::Mlp head =
      core::train_head(cache, live, proxy, structure, config_.train);

  // Publish through the one swap path — unless a concurrent publish
  // (operator rollout, another retrainer) advanced the engine while we
  // trained: this round's head was fitted against a superseded body/
  // version pairing, so discard it rather than racing the registry.
  if (engine_.model_version() != pinned_version) return 0;
  auto next = std::make_shared<core::FusedModel>(
      pinned->name(), body, std::move(head),
      pinned->head_only_on_disagreement());
  const std::uint64_t installed = engine_.swap_model(std::move(next));
  ++rounds_published_;
  retrain_rounds_counter().inc();
  return installed;
}

}  // namespace muffin::serve
