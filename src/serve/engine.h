// Batched multi-threaded inference engine for fused Muffin models.
//
// The per-record path (`models::Model::scores`) is fine for offline
// evaluation but wrong for serving: every request pays full body-model
// evaluation, a locked head forward, and per-call allocations. The engine
// turns the same FusedModel into a serving runtime:
//
//  * **Micro-batching.** Requests accumulate in a Batcher and flush on
//    batch-size or deadline; each batch is scored as a unit.
//  * **Worker pool.** Batches execute on the process-wide shared
//    ThreadPool (common::global_pool(), sized by MUFFIN_THREADS or the
//    hardware); on multi-core hosts independent batches score in
//    parallel. Every engine replica, MuffinSearch and the kernel-level
//    parallel_for draw from this one pool, so components never compete
//    through oversubscribed per-component threads. EngineConfig::workers
//    no longer sizes a private pool; it is kept (and validated) as the
//    requested concurrency hint.
//  * **Matrix-in/Matrix-out batch scoring.** Each batch's memo misses are
//    scored as one record span: every body model scores the whole span via
//    its Model::score_batch override (batched GEMM for network-backed
//    models, scratch reuse for calibrated ones) into the row-major gather
//    matrix, and the fused result comes from one core::fuse_gathered_batch
//    call — no per-record loops anywhere on the hot path.
//  * **Consensus short-circuit, row-wise.** §3.2: rows whose body models
//    agree resolve to the consensus mean directly; the muffin head runs a
//    single batched forward over the disagreement sub-batch only — on
//    well-calibrated pools that removes the head from the majority of
//    requests and shrinks the one GEMM that remains.
//  * **Per-worker head clones.** Each worker scores its batches on its own
//    copy of the muffin head. The const inference forwards make the shared
//    head safe to use concurrently, but worker-local clones keep each
//    worker's head weights hot in its own cache hierarchy.
//  * **Result memoization.** Model scores are deterministic per record
//    (the Model contract), so completed predictions are kept in a bounded
//    LRU keyed by (model version, record uid); repeated requests — the
//    common case in steady-state serving traffic — are answered from the
//    cache without touching the body models. Exactness requires uids to
//    uniquely identify record content, which the data generators
//    guarantee; the version key guarantees a hot-swap can never serve a
//    pre-swap score post-swap.
//  * **Versioned hot-swap.** The engine owns its model through a
//    ModelRegistry (serve/model_registry.h): swap_model() publishes a
//    new version as an O(1) pointer swap that never pauses traffic.
//    Each batch pins one snapshot for its whole lifetime (epoch/RCU via
//    shared_ptr), so in-flight batches finish — bit-identically — on
//    the version they started with, while the next batch picks up the
//    new one. Worker head clones re-clone lazily the first time a
//    worker sees a newer epoch.
//
// Engine outputs are bit-identical to FusedModel::scores on every record
// within one model version: the batch path replicates its arithmetic
// (same gather order, same consensus mean, same head weights, same
// normalization).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <list>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fused.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/stats.h"
#include "serve/thread_pool.h"
#include "tensor/quant.h"

namespace muffin::serve {

struct EngineConfig {
  /// Requested concurrency (validated > 0). Batches run on the shared
  /// process-wide pool (common::global_pool()); size that pool with the
  /// MUFFIN_THREADS environment variable. This field budgets the
  /// per-engine head-clone count (min(workers, pool size)).
  std::size_t workers = 4;
  std::size_t max_batch = 32;                 ///< size-flush threshold
  std::chrono::microseconds max_delay{1000};  ///< deadline-flush threshold
  /// Max memoized predictions; 0 disables the result cache.
  std::size_t result_cache_capacity = 1 << 16;
  /// Admission bound, forwarded to the batcher: submits throw
  /// muffin::Overloaded once this many requests are queued (0 =
  /// unbounded). The rejection happens at enqueue — overload is reported
  /// in microseconds instead of the request timing out under a backlog.
  std::size_t max_queue = 0;
  /// Per-request serving deadline (0 = none): a request that has already
  /// waited this long when its batch is picked up is failed with
  /// muffin::Error before any scoring work is spent on it.
  std::chrono::milliseconds deadline{0};
  /// Version the construction-time model is registered under (>= 1).
  /// Servers loading a stamped artifact pass its model_version through.
  std::uint64_t initial_model_version = 1;
};

/// One served prediction.
struct Prediction {
  std::size_t predicted = 0;   ///< argmax class
  tensor::Vector scores;       ///< full score vector (sums to 1)
  bool consensus = false;      ///< body agreed; head was skipped
  bool cached = false;         ///< answered from the result memo
  std::uint64_t model_version = 0;  ///< version that scored this reply
};

/// Monotonic counters describing how the engine served its traffic.
struct EngineCounters {
  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t cache_hits = 0;
  std::size_t consensus_short_circuits = 0;
  std::size_t head_evaluations = 0;
};

/// The serving tier's all-or-error rule, in one place: wait for every
/// future and return all predictions; if any failed, still await the
/// rest (so nothing is left in flight) and rethrow the first error.
/// Shared by engine/router predict_batch and the RPC server's writer.
[[nodiscard]] std::vector<Prediction> collect_all_or_error(
    std::vector<std::future<Prediction>> futures);

class InferenceEngine {
 public:
  explicit InferenceEngine(std::shared_ptr<const core::FusedModel> model,
                           EngineConfig config = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueue one record; the future completes when its batch is scored.
  [[nodiscard]] std::future<Prediction> submit(const data::Record& record);

  /// Enqueue a record span atomically (one lock, one wakeup — either
  /// every record enters the engine or, if it is stopped, none do) and
  /// return one future per record, in input order. This is the hot path
  /// for callers that already hold a batch: the RPC server feeds each
  /// decoded request frame through it, and predict_batch builds on it.
  [[nodiscard]] std::vector<std::future<Prediction>> submit_batch(
      std::span<const data::Record> records);
  /// Move overload for callers whose records are already materialized
  /// and disposable (the RPC server's decoded frames): records move into
  /// the engine instead of being copied.
  [[nodiscard]] std::vector<std::future<Prediction>> submit_batch(
      std::vector<data::Record>&& records);

  /// Synchronous single-record convenience: submit + wait.
  [[nodiscard]] Prediction predict(const data::Record& record);

  /// Submit every record, wait for all, return predictions in input order.
  [[nodiscard]] std::vector<Prediction> predict_batch(
      std::span<const data::Record> records);

  /// Drain in-flight requests and stop the runtime (idempotent). New
  /// submissions are rejected afterwards.
  void shutdown();

  /// Atomically publish a new model under live load and return the
  /// installed version. `version == 0` auto-assigns current + 1; an
  /// explicit version must advance monotonically (rollback guard). The
  /// swap is an O(1) registry publish — no pause, no flush: in-flight
  /// batches finish on the version they pinned, later batches score on
  /// the new one, and the version-keyed memo makes stale replies
  /// impossible. The new model must match the serving shape (class
  /// count) of the current one; the body pool may change freely.
  std::uint64_t swap_model(std::shared_ptr<const core::FusedModel> model,
                           std::uint64_t version = 0);

  /// Pin the live model (epoch semantics — the returned pointer keeps
  /// that version alive regardless of later swaps).
  [[nodiscard]] std::shared_ptr<const core::FusedModel> model() const {
    return registry_.current()->model;
  }
  /// The live model version.
  [[nodiscard]] std::uint64_t model_version() const {
    return registry_.version();
  }
  /// Swaps performed on this engine since construction.
  [[nodiscard]] std::size_t swaps() const {
    return swaps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const LatencyStats& latency() const { return latency_; }
  [[nodiscard]] EngineCounters counters() const;

  // Shard-local memo introspection (used by ShardRouter and the sharding
  // tests to verify uid affinity without perturbing the LRU order).
  /// Number of uids currently memoized. 0 whenever the cache is disabled.
  [[nodiscard]] std::size_t cache_entries() const;
  /// Whether `uid` is currently memoized; does not touch recency order.
  [[nodiscard]] bool cache_contains(std::uint64_t uid) const;
  /// Score-payload bytes currently held by the memo (also reported on the
  /// "serve.result_memo_bytes" gauge).
  [[nodiscard]] std::size_t memo_bytes() const;
  /// The quant mode memoized replies are stored (and replied) in — fixed
  /// at construction from tensor::active_quant_mode().
  [[nodiscard]] tensor::QuantMode memo_quant_mode() const {
    return memo_mode_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    data::Record record;
    Clock::time_point enqueued;
    std::promise<Prediction> promise;
    /// Picked by the edge sampler (obs::Tracer::sample) at submit time;
    /// traced requests emit serve.queue / serve.request span events.
    bool traced = false;
  };

  /// One memoized reply, stored in the engine's memo quant mode: exactly
  /// one score representation is populated. A reply served from the memo
  /// dequantizes with the stored scale, and the miss that created the
  /// entry replied with the same dequantized values (canonicalize-on-miss
  /// in process_batch) — so hit and miss replies for one uid are
  /// bit-identical, with nothing ever re-quantized. Entries carry the
  /// model version that produced them: a lookup under a different
  /// version misses (and the rescore replaces the stale entry), so a
  /// hot-swap can never leak a pre-swap score.
  struct MemoEntry {
    std::uint64_t version = 0;        ///< model version that scored this
    std::uint32_t predicted = 0;
    bool consensus = false;
    std::vector<double> f64;          ///< QuantMode::Off
    std::vector<std::uint16_t> bf16;  ///< QuantMode::Bf16
    std::vector<std::int8_t> i8;      ///< QuantMode::Int8 ...
    double scale = 1.0;               ///< ... with one per-vector scale
    [[nodiscard]] std::size_t payload_bytes() const;
  };

  /// One lazily re-cloned worker head: shared-pool workers map onto
  /// slots by modulo, and each slot tracks which model version its
  /// clone was taken from. A batch that pins a newer version than the
  /// slot holds refreshes the clone (publish-then-use under the slot
  /// mutex is a pointer swap; the old clone stays alive for any batch
  /// still holding it); a batch pinned to an *older* version — one that
  /// raced a swap — scores on its snapshot's own head instead of
  /// thrashing the slot backwards.
  struct HeadSlot {
    std::mutex mutex;
    std::uint64_t version = 0;
    std::shared_ptr<const nn::Mlp> head;
  };

  void dispatch_loop();
  void process_batch(std::vector<Request> batch);

  /// The head to score `snapshot`'s disagreement rows with on `worker`:
  /// the slot clone when it is (or can be refreshed to) the snapshot's
  /// version, the snapshot's own head otherwise.
  [[nodiscard]] std::shared_ptr<const nn::Mlp> head_for(
      std::size_t worker, const ModelSnapshot& snapshot);

  /// Quantize `prediction.scores` into a MemoEntry and replace them with
  /// the dequantized (canonical) values; sets prediction.predicted from
  /// the canonical scores and copies it into the entry.
  [[nodiscard]] MemoEntry canonicalize_and_pack(Prediction& prediction) const;

  [[nodiscard]] bool cache_lookup(std::uint64_t uid, std::uint64_t version,
                                  Prediction& out);
  void cache_store(std::uint64_t uid, MemoEntry entry);

  ModelRegistry registry_;
  EngineConfig config_;
  std::size_t num_classes_;

  ThreadPool& pool_;  ///< the shared process-wide pool (never owned)
  Batcher<Request> batcher_;
  /// One slot per budgeted worker (min(pool size, config.workers));
  /// unique_ptr because slots hold a mutex and the vector is sized once.
  std::vector<std::unique_ptr<HeadSlot>> head_slots_;

  // Bounded LRU result memo: uid -> (version, quantized reply), most
  // recent at the front. memo_bytes_ tracks the score-payload footprint
  // (mirrored on the "serve.result_memo_bytes" gauge).
  tensor::QuantMode memo_mode_ = tensor::QuantMode::Off;
  mutable std::mutex cache_mutex_;
  std::list<std::pair<std::uint64_t, MemoEntry>> cache_order_;
  std::unordered_map<std::uint64_t, decltype(cache_order_)::iterator>
      cache_index_;
  std::size_t memo_bytes_ = 0;  ///< guarded by cache_mutex_

  // In-flight batch accounting so shutdown can wait for the pool to finish
  // without relying on pool destruction order.
  std::mutex inflight_mutex_;
  std::condition_variable inflight_done_;
  std::size_t inflight_batches_ = 0;

  LatencyStats latency_;
  std::atomic<std::size_t> swaps_{0};
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> cache_hits_{0};
  std::atomic<std::size_t> consensus_short_circuits_{0};
  std::atomic<std::size_t> head_evaluations_{0};

  std::atomic<bool> stopped_{false};
  std::thread dispatcher_;
};

/// Hot-swap from a MUFA artifact: map the head artifact at `path`
/// (tensor prefix "head" — the layout `muffin_cli serve --artifact`
/// writes), rebuild the fused model around the engine's current body
/// and fusing mode, and publish it through swap_model. A stamped
/// artifact installs under its model_version (which must advance the
/// registry); an unstamped one (a v1 container, or version 0) auto-
/// assigns the next version. Returns the installed version. This is the
/// one reload path shared by the Reload RPC, LocalReplica::reload and
/// the CLI's SIGHUP handler.
[[nodiscard]] std::uint64_t reload_head_artifact(InferenceEngine& engine,
                                                 const std::string& path);

}  // namespace muffin::serve
