// Batched multi-threaded inference engine for fused Muffin models.
//
// The per-record path (`models::Model::scores`) is fine for offline
// evaluation but wrong for serving: every request pays full body-model
// evaluation, a locked head forward, and per-call allocations. The engine
// turns the same FusedModel into a serving runtime:
//
//  * **Micro-batching.** Requests accumulate in a Batcher and flush on
//    batch-size or deadline; each batch is scored as a unit.
//  * **Worker pool.** Batches execute on the process-wide shared
//    ThreadPool (common::global_pool(), sized by MUFFIN_THREADS or the
//    hardware); on multi-core hosts independent batches score in
//    parallel. Every engine replica, MuffinSearch and the kernel-level
//    parallel_for draw from this one pool, so components never compete
//    through oversubscribed per-component threads. EngineConfig::workers
//    no longer sizes a private pool; it is kept (and validated) as the
//    requested concurrency hint.
//  * **Matrix-in/Matrix-out batch scoring.** Each batch's memo misses are
//    scored as one record span: every body model scores the whole span via
//    its Model::score_batch override (batched GEMM for network-backed
//    models, scratch reuse for calibrated ones) into the row-major gather
//    matrix, and the fused result comes from one core::fuse_gathered_batch
//    call — no per-record loops anywhere on the hot path.
//  * **Consensus short-circuit, row-wise.** §3.2: rows whose body models
//    agree resolve to the consensus mean directly; the muffin head runs a
//    single batched forward over the disagreement sub-batch only — on
//    well-calibrated pools that removes the head from the majority of
//    requests and shrinks the one GEMM that remains.
//  * **Per-worker head clones.** Each worker scores its batches on its own
//    copy of the muffin head. The const inference forwards make the shared
//    head safe to use concurrently, but worker-local clones keep each
//    worker's head weights hot in its own cache hierarchy.
//  * **Result memoization.** Model scores are deterministic per record
//    (the Model contract), so completed predictions are kept in a bounded
//    LRU keyed by record uid; repeated requests — the common case in
//    steady-state serving traffic — are answered from the cache without
//    touching the body models. Exactness requires uids to uniquely
//    identify record content, which the data generators guarantee.
//
// Engine outputs are bit-identical to FusedModel::scores on every record:
// the batch path replicates its arithmetic (same gather order, same
// consensus mean, same head weights, same normalization).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <list>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fused.h"
#include "serve/batcher.h"
#include "serve/stats.h"
#include "serve/thread_pool.h"
#include "tensor/quant.h"

namespace muffin::serve {

struct EngineConfig {
  /// Requested concurrency (validated > 0). Batches run on the shared
  /// process-wide pool (common::global_pool()); size that pool with the
  /// MUFFIN_THREADS environment variable. This field budgets the
  /// per-engine head-clone count (min(workers, pool size)).
  std::size_t workers = 4;
  std::size_t max_batch = 32;                 ///< size-flush threshold
  std::chrono::microseconds max_delay{1000};  ///< deadline-flush threshold
  /// Max memoized predictions; 0 disables the result cache.
  std::size_t result_cache_capacity = 1 << 16;
  /// Admission bound, forwarded to the batcher: submits throw
  /// muffin::Overloaded once this many requests are queued (0 =
  /// unbounded). The rejection happens at enqueue — overload is reported
  /// in microseconds instead of the request timing out under a backlog.
  std::size_t max_queue = 0;
  /// Per-request serving deadline (0 = none): a request that has already
  /// waited this long when its batch is picked up is failed with
  /// muffin::Error before any scoring work is spent on it.
  std::chrono::milliseconds deadline{0};
};

/// One served prediction.
struct Prediction {
  std::size_t predicted = 0;   ///< argmax class
  tensor::Vector scores;       ///< full score vector (sums to 1)
  bool consensus = false;      ///< body agreed; head was skipped
  bool cached = false;         ///< answered from the result memo
};

/// Monotonic counters describing how the engine served its traffic.
struct EngineCounters {
  std::size_t requests = 0;
  std::size_t batches = 0;
  std::size_t cache_hits = 0;
  std::size_t consensus_short_circuits = 0;
  std::size_t head_evaluations = 0;
};

/// The serving tier's all-or-error rule, in one place: wait for every
/// future and return all predictions; if any failed, still await the
/// rest (so nothing is left in flight) and rethrow the first error.
/// Shared by engine/router predict_batch and the RPC server's writer.
[[nodiscard]] std::vector<Prediction> collect_all_or_error(
    std::vector<std::future<Prediction>> futures);

class InferenceEngine {
 public:
  explicit InferenceEngine(std::shared_ptr<const core::FusedModel> model,
                           EngineConfig config = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueue one record; the future completes when its batch is scored.
  [[nodiscard]] std::future<Prediction> submit(const data::Record& record);

  /// Enqueue a record span atomically (one lock, one wakeup — either
  /// every record enters the engine or, if it is stopped, none do) and
  /// return one future per record, in input order. This is the hot path
  /// for callers that already hold a batch: the RPC server feeds each
  /// decoded request frame through it, and predict_batch builds on it.
  [[nodiscard]] std::vector<std::future<Prediction>> submit_batch(
      std::span<const data::Record> records);
  /// Move overload for callers whose records are already materialized
  /// and disposable (the RPC server's decoded frames): records move into
  /// the engine instead of being copied.
  [[nodiscard]] std::vector<std::future<Prediction>> submit_batch(
      std::vector<data::Record>&& records);

  /// Synchronous single-record convenience: submit + wait.
  [[nodiscard]] Prediction predict(const data::Record& record);

  /// Submit every record, wait for all, return predictions in input order.
  [[nodiscard]] std::vector<Prediction> predict_batch(
      std::span<const data::Record> records);

  /// Drain in-flight requests and stop the runtime (idempotent). New
  /// submissions are rejected afterwards.
  void shutdown();

  [[nodiscard]] const core::FusedModel& model() const { return *model_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }
  [[nodiscard]] const LatencyStats& latency() const { return latency_; }
  [[nodiscard]] EngineCounters counters() const;

  // Shard-local memo introspection (used by ShardRouter and the sharding
  // tests to verify uid affinity without perturbing the LRU order).
  /// Number of uids currently memoized. 0 whenever the cache is disabled.
  [[nodiscard]] std::size_t cache_entries() const;
  /// Whether `uid` is currently memoized; does not touch recency order.
  [[nodiscard]] bool cache_contains(std::uint64_t uid) const;
  /// Score-payload bytes currently held by the memo (also reported on the
  /// "serve.result_memo_bytes" gauge).
  [[nodiscard]] std::size_t memo_bytes() const;
  /// The quant mode memoized replies are stored (and replied) in — fixed
  /// at construction from tensor::active_quant_mode().
  [[nodiscard]] tensor::QuantMode memo_quant_mode() const {
    return memo_mode_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    data::Record record;
    Clock::time_point enqueued;
    std::promise<Prediction> promise;
    /// Picked by the edge sampler (obs::Tracer::sample) at submit time;
    /// traced requests emit serve.queue / serve.request span events.
    bool traced = false;
  };

  /// One memoized reply, stored in the engine's memo quant mode: exactly
  /// one score representation is populated. A reply served from the memo
  /// dequantizes with the stored scale, and the miss that created the
  /// entry replied with the same dequantized values (canonicalize-on-miss
  /// in process_batch) — so hit and miss replies for one uid are
  /// bit-identical, with nothing ever re-quantized.
  struct MemoEntry {
    std::uint32_t predicted = 0;
    bool consensus = false;
    std::vector<double> f64;          ///< QuantMode::Off
    std::vector<std::uint16_t> bf16;  ///< QuantMode::Bf16
    std::vector<std::int8_t> i8;      ///< QuantMode::Int8 ...
    double scale = 1.0;               ///< ... with one per-vector scale
    [[nodiscard]] std::size_t payload_bytes() const;
  };

  void dispatch_loop();
  void process_batch(std::vector<Request> batch);

  /// Quantize `prediction.scores` into a MemoEntry and replace them with
  /// the dequantized (canonical) values; sets prediction.predicted from
  /// the canonical scores and copies it into the entry.
  [[nodiscard]] MemoEntry canonicalize_and_pack(Prediction& prediction) const;

  [[nodiscard]] bool cache_lookup(std::uint64_t uid, Prediction& out);
  void cache_store(std::uint64_t uid, MemoEntry entry);

  std::shared_ptr<const core::FusedModel> model_;
  EngineConfig config_;
  std::size_t num_classes_;
  std::size_t body_size_;

  ThreadPool& pool_;  ///< the shared process-wide pool (never owned)
  Batcher<Request> batcher_;
  std::vector<nn::Mlp> worker_heads_;  ///< one clone per shared-pool worker

  // Bounded LRU result memo: uid -> quantized reply, most recent at the
  // front. memo_bytes_ tracks the score-payload footprint (mirrored on
  // the "serve.result_memo_bytes" gauge).
  tensor::QuantMode memo_mode_ = tensor::QuantMode::Off;
  mutable std::mutex cache_mutex_;
  std::list<std::pair<std::uint64_t, MemoEntry>> cache_order_;
  std::unordered_map<std::uint64_t, decltype(cache_order_)::iterator>
      cache_index_;
  std::size_t memo_bytes_ = 0;  ///< guarded by cache_mutex_

  // In-flight batch accounting so shutdown can wait for the pool to finish
  // without relying on pool destruction order.
  std::mutex inflight_mutex_;
  std::condition_variable inflight_done_;
  std::size_t inflight_batches_ = 0;

  LatencyStats latency_;
  std::atomic<std::size_t> requests_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> cache_hits_{0};
  std::atomic<std::size_t> consensus_short_circuits_{0};
  std::atomic<std::size_t> head_evaluations_{0};

  std::atomic<bool> stopped_{false};
  std::thread dispatcher_;
};

}  // namespace muffin::serve
