// One shard replica as the router sees it.
//
// The ShardRouter routes by consistent hash and must not care where a
// replica lives: in this process (an InferenceEngine) or across a socket
// (an rpc::RemoteShard talking to a ShardServer). ReplicaBackend is that
// seam — the submit/health/stats surface both kinds share. The router
// owns topology (ring membership, drain state, routed counters); the
// backend owns transport and scoring.
//
// Stats semantics differ by locality and are part of the contract:
//  * A local replica reports its engine's own counters and latency.
//  * A remote replica reports *client-observed* accounting: round-trip
//    latency as measured by this process, counters reconstructed from
//    the response flags (cached/consensus per prediction). The remote
//    server's engine keeps its own authoritative counters in its own
//    process. cache_entries()/cache_contains() are unknowable across the
//    wire and report 0/false.
//  * probe() is the health check the router's monitor thread calls:
//    local replicas are healthy while running; remote replicas send an
//    EMPTY score request through the server's full request path (not a
//    bare liveness ping — a process that is alive but can no longer
//    serve must fail its probe) with a deadline. consecutive_failures()
//    counts failed submits/requests since the last success (always 0
//    locally), so the monitor can drain a shard whose requests time out
//    even when its probe still answers; probes never reset the count —
//    only the router's restore (reset_failures) does.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "serve/engine.h"

namespace muffin::serve {

/// Server-authoritative accounting for one replica, as shipped by the
/// Stats RPC (serve/rpc/wire.h): the serving engine's own counters and
/// memo size, its latency accounting in transferable form (the reservoir
/// travels, so merged percentiles behave as if recorded in one process),
/// and — when the report crosses a process boundary — the server
/// process's metrics registry snapshot. In-process replicas leave
/// `metrics` empty: the registry is process-wide, so every local replica
/// would ship the same duplicate copy; callers snapshot obs::registry()
/// once themselves.
struct StatsReport {
  EngineCounters counters;
  std::size_t cache_entries = 0;
  LatencyStats::Export latency;
  obs::MetricsSnapshot metrics;
};

class ReplicaBackend {
 public:
  virtual ~ReplicaBackend() = default;

  /// Enqueue one record; the future completes (value or exception) when
  /// the replica has an answer. Throws only if the backend is shut down.
  [[nodiscard]] virtual std::future<Prediction> submit(
      const data::Record& record) = 0;

  /// Stop the backend (idempotent); in-flight work completes or fails.
  virtual void shutdown() = 0;

  /// Liveness: true if the replica can currently serve. May block up to
  /// the backend's probe deadline; called off the router's locks.
  [[nodiscard]] virtual bool probe() = 0;

  /// Consecutive failed requests since the last success (remote only).
  [[nodiscard]] virtual std::size_t consecutive_failures() const {
    return 0;
  }

  /// Clear the failure history — called by the router when it restores
  /// a drained replica, so the restored shard starts with a clean slate.
  virtual void reset_failures() {}

  [[nodiscard]] virtual bool remote() const = 0;
  /// Human-readable placement ("local" or the endpoint).
  [[nodiscard]] virtual std::string describe() const = 0;

  [[nodiscard]] virtual EngineCounters counters() const = 0;
  [[nodiscard]] virtual const LatencyStats& latency() const = 0;
  [[nodiscard]] virtual std::size_t cache_entries() const = 0;
  [[nodiscard]] virtual bool cache_contains(std::uint64_t uid) const = 0;

  /// Authoritative accounting, as opposed to the client-observed
  /// counters()/latency() above: local replicas answer from their own
  /// engine; remote replicas fetch the *server's* stats over the Stats
  /// RPC (so latency is what the server measured, counters include
  /// traffic from every client of that server). May block on the network
  /// for remote replicas; returns nullopt when the fetch fails, and the
  /// caller falls back to client-observed accounting.
  [[nodiscard]] virtual std::optional<StatsReport> authoritative_stats() = 0;

  /// Hot-swap the replica's model to the head artifact at
  /// `artifact_path` and return the installed model version. For a local
  /// replica the path is read by this process; for a remote replica it
  /// names a file on the *server's* filesystem and travels over the
  /// Reload RPC. Serving never pauses either way — in-flight batches
  /// finish on the version they pinned. Throws muffin::Error when the
  /// artifact cannot be loaded or its stamped version does not advance
  /// the replica's registry.
  [[nodiscard]] virtual std::uint64_t reload(
      const std::string& artifact_path) = 0;

  /// The wrapped engine for in-process replicas; nullptr for remote.
  [[nodiscard]] virtual const InferenceEngine* engine() const {
    return nullptr;
  }
};

/// In-process replica: owns an InferenceEngine and forwards verbatim.
class LocalReplica final : public ReplicaBackend {
 public:
  LocalReplica(std::shared_ptr<const core::FusedModel> model,
               const EngineConfig& config)
      : engine_(std::move(model), config) {}

  [[nodiscard]] std::future<Prediction> submit(
      const data::Record& record) override {
    return engine_.submit(record);
  }
  void shutdown() override {
    stopped_ = true;
    engine_.shutdown();
  }
  [[nodiscard]] bool probe() override { return !stopped_; }
  [[nodiscard]] bool remote() const override { return false; }
  [[nodiscard]] std::string describe() const override { return "local"; }
  [[nodiscard]] EngineCounters counters() const override {
    return engine_.counters();
  }
  [[nodiscard]] const LatencyStats& latency() const override {
    return engine_.latency();
  }
  [[nodiscard]] std::size_t cache_entries() const override {
    return engine_.cache_entries();
  }
  [[nodiscard]] bool cache_contains(std::uint64_t uid) const override {
    return engine_.cache_contains(uid);
  }
  [[nodiscard]] std::optional<StatsReport> authoritative_stats() override {
    StatsReport report;
    report.counters = engine_.counters();
    report.cache_entries = engine_.cache_entries();
    report.latency = engine_.latency().to_export();
    return report;  // metrics stay empty: same process, same registry
  }
  [[nodiscard]] std::uint64_t reload(
      const std::string& artifact_path) override {
    return reload_head_artifact(engine_, artifact_path);
  }
  [[nodiscard]] const InferenceEngine* engine() const override {
    return &engine_;
  }

 private:
  InferenceEngine engine_;
  std::atomic<bool> stopped_{false};
};

}  // namespace muffin::serve
